//! The serialization graph proper, on a dense node interner.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;

use bpush_types::{Cycle, QueryId};

use crate::diff::GraphDiff;
use crate::node::Node;

/// Reusable depth-first-search state: an epoch-stamped visited array plus
/// an explicit stack, so path queries allocate nothing once the graph has
/// reached its steady-state size.
#[derive(Debug, Default)]
struct DfsScratch {
    /// `visited[id] == epoch` marks `id` as seen by the current search.
    visited: Vec<u32>,
    /// Bumped once per search; wraps by zero-filling `visited`.
    epoch: u32,
    stack: Vec<u32>,
}

impl DfsScratch {
    /// Sizes the visited array and opens a fresh epoch.
    fn begin(&mut self, nodes: usize) -> u32 {
        if self.visited.len() < nodes {
            // bpush-lint: allow(hot-alloc) — amortized: grows only until the graph's steady-state size, then never again
            self.visited.resize(nodes, 0);
        }
        if self.epoch == u32::MAX {
            self.visited.iter_mut().for_each(|v| *v = 0);
            self.epoch = 0;
        }
        self.epoch += 1;
        self.stack.clear();
        self.epoch
    }
}

/// A conflict serialization graph (§3.3).
///
/// Nodes are committed server transactions plus, in client copies, the
/// client's active read-only queries. An edge `a → b` means one of `a`'s
/// operations precedes and conflicts with one of `b`'s. The graph keeps a
/// per-commit-cycle membership index so the client can implement the
/// paper's space optimization (Lemma 1): only the subgraphs `SG^k` with
/// `k ≥ c_o` — the cycle when the oldest active query first had an item
/// overwritten — need to be retained.
///
/// Cycle checks are the paper's acceptance test: a read creating edge
/// `T_l → R` is accepted iff no path `R →* T_l` exists
/// ([`SerializationGraph::would_close_cycle`]).
///
/// # Representation
///
/// Nodes are interned to dense `u32` ids; forward *and* reverse adjacency
/// are `Vec`-indexed by id, so the validation hot paths run on integer
/// arrays rather than tree lookups:
///
/// * [`SerializationGraph::path_exists`] /
///   [`SerializationGraph::would_close_cycle`] walk id-based successor
///   lists with an epoch-stamped visited array — no per-call allocation
///   and no ordered-set probes;
/// * [`SerializationGraph::remove_query`] unlinks a node touching only
///   its in- and out-neighbors (the reverse index replaces the old
///   scan over every adjacency list);
/// * [`SerializationGraph::prune_before`] drops whole per-cycle subgraphs
///   the same way, via the by-cycle id index.
///
/// Freed ids are recycled LIFO, so long-running clients that steadily
/// intern new transactions while pruning old ones keep a bounded intern
/// table. Every structure is insertion-ordered or key-sorted — behavior
/// is a pure function of the operation sequence, which keeps replay-based
/// checking (`cargo xtask mc`) exact.
///
/// The pre-interning `BTreeMap` implementation survives as
/// [`crate::baseline::BaselineGraph`], the differential-testing oracle
/// and benchmark baseline.
///
/// # Thread safety
///
/// The interior-mutable search scratch makes this type [`Send`] but
/// **not [`Sync`]**: `&self` path queries mutate the shared scratch, so
/// concurrent shared reads from multiple threads are unsound and the
/// compiler rejects them. A client validates on one thread in this
/// design (each simulated client owns its graph); to share one across
/// threads, wrap it in a `Mutex` — or `clone()` it, which starts the
/// clone with fresh scratch.
pub struct SerializationGraph {
    /// Intern table: dense id → node. Entries of freed ids are stale
    /// until the id is reused; `index` is the source of liveness.
    nodes: Vec<Node>,
    /// Node → dense id, for the live nodes only.
    index: BTreeMap<Node, u32>,
    /// Forward adjacency by id, as nodes — lets
    /// [`SerializationGraph::successors`] hand out a slice directly.
    out: Vec<Vec<Node>>,
    /// Forward adjacency by id, as ids, kept position-aligned with `out`.
    out_ids: Vec<Vec<u32>>,
    /// Reverse adjacency by id (predecessor ids).
    in_ids: Vec<Vec<u32>>,
    /// Freed ids available for reuse, LIFO.
    free: Vec<u32>,
    /// Commit-cycle index of transaction-node ids, for pruning.
    by_cycle: BTreeMap<Cycle, Vec<u32>>,
    /// Total number of directed edges.
    edge_count: usize,
    /// Search scratch; interior-mutable so `&self` path queries reuse it.
    scratch: RefCell<DfsScratch>,
}

impl Default for SerializationGraph {
    fn default() -> Self {
        SerializationGraph::new()
    }
}

impl Clone for SerializationGraph {
    fn clone(&self) -> Self {
        SerializationGraph {
            nodes: self.nodes.clone(),
            index: self.index.clone(),
            out: self.out.clone(),
            out_ids: self.out_ids.clone(),
            in_ids: self.in_ids.clone(),
            free: self.free.clone(),
            by_cycle: self.by_cycle.clone(),
            edge_count: self.edge_count,
            // search scratch is not logical state; the clone starts fresh
            scratch: RefCell::new(DfsScratch::default()),
        }
    }
}

impl fmt::Debug for SerializationGraph {
    /// Prints the *logical* graph only — nodes in sorted order with their
    /// successor lists in insertion order. Scratch state and interning
    /// accidents (id values, free-list contents) are deliberately
    /// excluded so equal graphs always print equally; the model checker
    /// deduplicates states by this text.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut map = f.debug_map();
        for (&node, &id) in &self.index {
            map.entry(&node, &self.out[id as usize]);
        }
        map.finish()
    }
}

impl SerializationGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        SerializationGraph {
            nodes: Vec::new(),
            index: BTreeMap::new(),
            out: Vec::new(),
            out_ids: Vec::new(),
            in_ids: Vec::new(),
            free: Vec::new(),
            by_cycle: BTreeMap::new(),
            edge_count: 0,
            scratch: RefCell::new(DfsScratch::default()),
        }
    }

    /// Number of nodes currently in the graph.
    pub fn node_count(&self) -> usize {
        self.index.len()
    }

    /// Number of directed edges currently in the graph.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Whether `node` is present.
    pub fn contains(&self, node: Node) -> bool {
        self.index.contains_key(&node)
    }

    /// Interns `node`, returning its dense id (idempotent).
    fn intern(&mut self, node: Node) -> u32 {
        if let Some(&id) = self.index.get(&node) {
            return id;
        }
        let id = match self.free.pop() {
            Some(id) => {
                self.nodes[id as usize] = node; // bpush-lint: allow(panic-reach) — id came off the free list, always a live arena slot < nodes.len()
                id
            }
            None => {
                let id = u32::try_from(self.nodes.len())
                    // lint: allow(panic) — a graph of 2^32 live nodes exceeds any Lemma-1 window
                    .expect("node interner overflow");
                self.nodes.push(node);
                self.out.push(Vec::new());
                self.out_ids.push(Vec::new());
                self.in_ids.push(Vec::new());
                id
            }
        };
        self.index.insert(node, id);
        if let Node::Txn(t) = node {
            self.by_cycle.entry(t.cycle()).or_default().push(id);
        }
        id
    }

    /// Unlinks one live node: detaches its incident edges by walking the
    /// forward and reverse adjacency of the node itself — O(out-degree +
    /// Σ out-degree of in-neighbors) — and recycles the id. Does *not*
    /// touch `by_cycle`; callers that remove transaction nodes maintain
    /// it themselves.
    fn unlink(&mut self, id: u32) {
        let node = self.nodes[id as usize]; // bpush-lint: allow(panic-reach) — id is a live arena slot < nodes.len() by the free-list invariant
        let outs = std::mem::take(&mut self.out_ids[id as usize]); // bpush-lint: allow(panic-reach) — id is a live arena slot < nodes.len() by the free-list invariant
        self.out[id as usize].clear(); // bpush-lint: allow(panic-reach) — id is a live arena slot < nodes.len() by the free-list invariant
        self.edge_count -= outs.len();
        for s in outs {
            if s != id {
                self.in_ids[s as usize].retain(|&p| p != id); // bpush-lint: allow(panic-reach) — s is a recorded neighbor id, always a live arena slot
            }
        }
        let ins = std::mem::take(&mut self.in_ids[id as usize]); // bpush-lint: allow(panic-reach) — id is a live arena slot < nodes.len() by the free-list invariant
        for p in ins {
            if p == id {
                continue; // the self-loop was accounted with the out edges
            }
            let succ_ids = &mut self.out_ids[p as usize]; // bpush-lint: allow(panic-reach) — p is a recorded neighbor id, always a live arena slot
            if let Some(pos) = succ_ids.iter().position(|&s| s == id) {
                succ_ids.remove(pos);
                self.out[p as usize].remove(pos); // bpush-lint: allow(panic-reach) — p is a recorded neighbor id, always a live arena slot
                self.edge_count -= 1;
            }
        }
        self.index.remove(&node);
        // bpush-lint: allow(hot-alloc) — amortized: the free list's capacity is bounded by the intern table and is reused LIFO
        self.free.push(id);
    }

    /// Inserts a node (idempotent).
    pub fn add_node(&mut self, node: Node) {
        self.intern(node);
    }

    /// Inserts a directed edge `from → to`, inserting the endpoints if
    /// needed. Returns `true` if the edge is new.
    pub fn add_edge(&mut self, from: Node, to: Node) -> bool {
        let f = self.intern(from);
        let t = self.intern(to);
        // bpush-lint: allow(panic-reach) — f was just interned, so f < nodes.len()
        if self.out_ids[f as usize].contains(&t) {
            return false;
        }
        self.out_ids[f as usize].push(t); // bpush-lint: allow(panic-reach) — f was just interned, so f < nodes.len()
        self.out[f as usize].push(to); // bpush-lint: allow(panic-reach) — f was just interned, so f < nodes.len()
        self.in_ids[t as usize].push(f); // bpush-lint: allow(panic-reach) — t was just interned, so t < nodes.len()
        self.edge_count += 1;
        true
    }

    /// The successors of `node`, or an empty slice for unknown nodes.
    pub fn successors(&self, node: Node) -> &[Node] {
        match self.index.get(&node) {
            Some(&id) => &self.out[id as usize],
            None => &[],
        }
    }

    /// Whether a directed path `from →* to` exists (including the trivial
    /// path when `from == to` only if a real cycle through it exists —
    /// i.e. `path_exists(n, n)` is `true` only when `n` lies on a cycle).
    // bpush-lint: hot_path — per-read SGT acceptance probe (PR-3 allocation-freedom contract)
    pub fn path_exists(&self, from: Node, to: Node) -> bool {
        let (from, to) = match (self.index.get(&from), self.index.get(&to)) {
            (Some(&f), Some(&t)) => (f, t),
            _ => return false,
        };
        let mut scratch = self.scratch.borrow_mut();
        let epoch = scratch.begin(self.nodes.len());
        let DfsScratch { visited, stack, .. } = &mut *scratch;
        // bpush-lint: allow(hot-alloc) — amortized: the reusable scratch stack grows to its high-water mark once
        stack.extend_from_slice(&self.out_ids[from as usize]); // bpush-lint: allow(panic-reach) — from is an interned id < nodes.len()
        while let Some(id) = stack.pop() {
            if id == to {
                return true;
            }
            // bpush-lint: allow(panic-reach) — visited is sized to nodes.len() by scratch.begin
            if visited[id as usize] != epoch {
                // bpush-lint: allow(panic-reach) — visited is sized to nodes.len() by scratch.begin
                visited[id as usize] = epoch;
                // bpush-lint: allow(hot-alloc, panic-reach) — amortized reusable scratch stack; id is always a live arena slot
                stack.extend_from_slice(&self.out_ids[id as usize]);
            }
        }
        false
    }

    /// Whether inserting the edge `from → to` would close a cycle —
    /// the SGT acceptance test. The edge is *not* inserted.
    // bpush-lint: hot_path — the SGT acceptance test itself (PR-3 allocation-freedom contract)
    pub fn would_close_cycle(&self, from: Node, to: Node) -> bool {
        if from == to {
            return true;
        }
        self.path_exists(to, from)
    }

    /// Inserts `from → to` only if it closes no cycle.
    ///
    /// Returns `Ok(inserted)` where `inserted` is false for a duplicate
    /// edge, or `Err(CycleDetected)` if the edge would create a cycle (the
    /// graph is left unchanged).
    pub fn try_add_edge(&mut self, from: Node, to: Node) -> Result<bool, CycleDetected> {
        if self.would_close_cycle(from, to) {
            return Err(CycleDetected { from, to });
        }
        Ok(self.add_edge(from, to))
    }

    /// Whether the whole graph is acyclic (serialization theorem check).
    pub fn is_acyclic(&self) -> bool {
        // Iterative three-color DFS over ids. Not a validation hot path;
        // the color array is allocated per call.
        const WHITE: u8 = 0;
        const GRAY: u8 = 1;
        const BLACK: u8 = 2;
        let mut color = vec![WHITE; self.nodes.len()];
        for &start in self.index.values() {
            if color[start as usize] != WHITE {
                continue;
            }
            // stack of (node id, next-successor-index)
            let mut stack: Vec<(u32, usize)> = vec![(start, 0)];
            color[start as usize] = GRAY;
            while let Some(&mut (n, ref mut idx)) = stack.last_mut() {
                let succ = &self.out_ids[n as usize];
                if *idx < succ.len() {
                    let next = succ[*idx];
                    *idx += 1;
                    match color[next as usize] {
                        GRAY => return false,
                        WHITE => {
                            color[next as usize] = GRAY;
                            stack.push((next, 0));
                        }
                        _ => {}
                    }
                } else {
                    color[n as usize] = BLACK;
                    stack.pop();
                }
            }
        }
        true
    }

    /// Applies a broadcast [`GraphDiff`]: inserts the newly committed
    /// transactions and their conflict edges.
    pub fn apply_diff(&mut self, diff: &GraphDiff) {
        for &t in diff.committed() {
            self.add_node(Node::Txn(t));
        }
        for &(from, to) in diff.edges() {
            self.add_edge(Node::Txn(from), Node::Txn(to));
        }
    }

    /// Removes a query node and all its incident edges, in O(out-degree +
    /// in-degree·neighbor-list-length) via the reverse index.
    // bpush-lint: hot_path — per-commit/abort cleanup on the client validation path
    pub fn remove_query(&mut self, query: QueryId) {
        if let Some(&id) = self.index.get(&Node::Query(query)) {
            self.unlink(id);
        }
    }

    /// Lemma-1 pruning: drops every transaction committed before `bound`
    /// together with its incident edges.
    ///
    /// Edges between server transactions always point from earlier to
    /// later commits (Claim 1: strict histories admit no edges *into* a
    /// previous cycle's subgraph), so cycles through an active query that
    /// was first invalidated at cycle `c_o` only involve transactions of
    /// cycles `≥ c_o`; pruning below `min c_o` keeps the acceptance test
    /// exact. See [`crate::SerializationGraph::would_close_cycle`].
    ///
    /// Work is proportional to the pruned subgraphs' own degree (each
    /// stale node is unlinked through its forward and reverse adjacency),
    /// not to the size of the retained graph.
    pub fn prune_before(&mut self, bound: Cycle) {
        let stale: Vec<u32> = self
            .by_cycle
            .range(..bound)
            .flat_map(|(_, ids)| ids.iter().copied())
            .collect();
        if stale.is_empty() {
            return;
        }
        for id in stale {
            self.unlink(id);
        }
        self.by_cycle = self.by_cycle.split_off(&bound);
    }

    /// Drops the entire graph content — including the intern table and
    /// search scratch, so a long-lived client returns to zero footprint.
    /// Equivalent to pruning past the last cycle; used when no query has
    /// been invalidated (the paper's "if no items are updated, there is
    /// no space or processing overhead").
    pub fn clear(&mut self) {
        *self = SerializationGraph::new();
    }

    /// Iterates over all nodes in unspecified order.
    pub fn nodes(&self) -> impl Iterator<Item = Node> + '_ {
        self.index.keys().copied()
    }

    /// The earliest commit cycle still retained, if any transaction nodes
    /// exist.
    pub fn earliest_cycle(&self) -> Option<Cycle> {
        self.by_cycle.keys().next().copied()
    }

    /// The strongly connected components with more than one node — i.e.
    /// the actual cycles. Empty iff the graph is acyclic (up to
    /// self-loops, which [`SerializationGraph::add_edge`] cannot create).
    /// Useful for diagnosing validator failures.
    pub fn cycles(&self) -> Vec<Vec<Node>> {
        // Iterative Tarjan SCC over ids; diagnostic path, allocates
        // freely. Roots iterate in sorted node order for deterministic
        // component order.
        const UNSEEN: u32 = u32::MAX;
        let n = self.nodes.len();
        let mut order = vec![UNSEEN; n];
        let mut lowlink = vec![0u32; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<u32> = Vec::new();
        let mut next_index = 0u32;
        let mut out = Vec::new();

        for &root in self.index.values() {
            if order[root as usize] != UNSEEN {
                continue;
            }
            // call stack: (node id, successor cursor)
            let mut call: Vec<(u32, usize)> = vec![(root, 0)];
            order[root as usize] = next_index;
            lowlink[root as usize] = next_index;
            on_stack[root as usize] = true;
            stack.push(root);
            next_index += 1;
            while let Some(&mut (v, ref mut cursor)) = call.last_mut() {
                let succ = &self.out_ids[v as usize];
                if *cursor < succ.len() {
                    let w = succ[*cursor];
                    *cursor += 1;
                    if order[w as usize] == UNSEEN {
                        order[w as usize] = next_index;
                        lowlink[w as usize] = next_index;
                        on_stack[w as usize] = true;
                        stack.push(w);
                        next_index += 1;
                        call.push((w, 0));
                    } else if on_stack[w as usize] {
                        lowlink[v as usize] = lowlink[v as usize].min(order[w as usize]);
                    }
                } else {
                    call.pop();
                    if let Some(&(parent, _)) = call.last() {
                        lowlink[parent as usize] =
                            lowlink[parent as usize].min(lowlink[v as usize]);
                    }
                    if lowlink[v as usize] == order[v as usize] {
                        let mut component = Vec::new();
                        while let Some(w) = stack.pop() {
                            on_stack[w as usize] = false;
                            component.push(self.nodes[w as usize]);
                            if w == v {
                                break;
                            }
                        }
                        if component.len() > 1 {
                            out.push(component);
                        }
                    }
                }
            }
        }
        out
    }
}

/// Error returned by [`SerializationGraph::try_add_edge`] when the edge
/// would make the graph cyclic — i.e. the corresponding read must be
/// rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CycleDetected {
    /// Source of the offending edge.
    pub from: Node,
    /// Target of the offending edge.
    pub to: Node,
}

impl fmt::Display for CycleDetected {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "edge {} -> {} would close a serialization cycle",
            self.from, self.to
        )
    }
}

impl std::error::Error for CycleDetected {}

#[cfg(test)]
mod tests {
    use super::*;
    use bpush_types::TxnId;

    fn t(cycle: u64, seq: u32) -> TxnId {
        TxnId::new(Cycle::new(cycle), seq)
    }

    fn nt(cycle: u64, seq: u32) -> Node {
        Node::Txn(t(cycle, seq))
    }

    fn nq(q: u64) -> Node {
        Node::Query(QueryId::new(q))
    }

    #[test]
    fn empty_graph_properties() {
        let g = SerializationGraph::new();
        assert!(g.is_empty());
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert!(g.is_acyclic());
        assert!(!g.path_exists(nt(0, 0), nt(0, 1)));
        assert_eq!(g.earliest_cycle(), None);
    }

    #[test]
    fn add_edge_dedupes() {
        let mut g = SerializationGraph::new();
        assert!(g.add_edge(nt(0, 0), nt(1, 0)));
        assert!(!g.add_edge(nt(0, 0), nt(1, 0)));
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.successors(nt(0, 0)), &[nt(1, 0)]);
    }

    #[test]
    fn path_queries() {
        let mut g = SerializationGraph::new();
        g.add_edge(nt(0, 0), nt(1, 0));
        g.add_edge(nt(1, 0), nt(2, 0));
        g.add_edge(nt(2, 0), nt(3, 0));
        g.add_node(nt(9, 9));
        assert!(g.path_exists(nt(0, 0), nt(3, 0)));
        assert!(!g.path_exists(nt(3, 0), nt(0, 0)));
        assert!(!g.path_exists(nt(0, 0), nt(9, 9)));
        // no self-path without a cycle
        assert!(!g.path_exists(nt(1, 0), nt(1, 0)));
    }

    #[test]
    fn would_close_cycle_matches_paper_scenario() {
        // Figure 3: R read x from T_k; T_f (cycle o) overwrote an item R
        // had read; a conflict path T_f ->* T_l exists; reading from T_l
        // must be rejected.
        let mut g = SerializationGraph::new();
        let r = nq(0);
        let t_f = nt(2, 0);
        let mid = nt(3, 1);
        let t_l = nt(4, 0);
        g.add_edge(t_f, mid);
        g.add_edge(mid, t_l);
        g.add_edge(r, t_f); // precedence: T_f overwrote an item R read
        assert!(g.would_close_cycle(t_l, r), "dependency edge closes cycle");
        // a writer not reachable from T_f is fine
        let other = nt(4, 1);
        g.add_node(other);
        assert!(!g.would_close_cycle(other, r));
    }

    #[test]
    fn self_edge_is_a_cycle() {
        let g = SerializationGraph::new();
        assert!(g.would_close_cycle(nt(0, 0), nt(0, 0)));
    }

    #[test]
    fn try_add_edge_rejects_and_preserves() {
        let mut g = SerializationGraph::new();
        g.add_edge(nt(0, 0), nt(1, 0));
        let err = g.try_add_edge(nt(1, 0), nt(0, 0)).unwrap_err();
        assert_eq!(err.from, nt(1, 0));
        assert_eq!(err.to, nt(0, 0));
        assert_eq!(g.edge_count(), 1, "graph unchanged after rejection");
        assert!(g.is_acyclic());
        assert!(err.to_string().contains("serialization cycle"));
        assert!(g.try_add_edge(nt(0, 0), nt(2, 0)).unwrap());
    }

    #[test]
    fn is_acyclic_detects_long_cycle() {
        let mut g = SerializationGraph::new();
        g.add_edge(nt(0, 0), nt(1, 0));
        g.add_edge(nt(1, 0), nt(2, 0));
        assert!(g.is_acyclic());
        g.add_edge(nt(2, 0), nt(0, 0));
        assert!(!g.is_acyclic());
    }

    #[test]
    fn remove_query_drops_incident_edges() {
        let mut g = SerializationGraph::new();
        g.add_edge(nq(1), nt(1, 0));
        g.add_edge(nt(0, 0), nq(1));
        g.add_edge(nt(0, 0), nt(1, 0));
        assert_eq!(g.edge_count(), 3);
        g.remove_query(QueryId::new(1));
        assert_eq!(g.edge_count(), 1);
        assert!(!g.contains(nq(1)));
        assert!(g.contains(nt(0, 0)) && g.contains(nt(1, 0)));
    }

    #[test]
    fn prune_before_drops_old_cycles_only() {
        let mut g = SerializationGraph::new();
        g.add_edge(nt(0, 0), nt(1, 0));
        g.add_edge(nt(1, 0), nt(2, 0));
        g.add_edge(nt(2, 0), nt(3, 0));
        g.prune_before(Cycle::new(2));
        assert!(!g.contains(nt(0, 0)));
        assert!(!g.contains(nt(1, 0)));
        assert!(g.contains(nt(2, 0)) && g.contains(nt(3, 0)));
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.earliest_cycle(), Some(Cycle::new(2)));
        // path query within the retained window is unaffected
        assert!(g.path_exists(nt(2, 0), nt(3, 0)));
    }

    #[test]
    fn prune_before_noop_when_nothing_old() {
        let mut g = SerializationGraph::new();
        g.add_edge(nt(5, 0), nt(6, 0));
        let edges = g.edge_count();
        g.prune_before(Cycle::new(3));
        assert_eq!(g.edge_count(), edges);
        assert_eq!(g.node_count(), 2);
    }

    #[test]
    fn prune_keeps_query_nodes() {
        let mut g = SerializationGraph::new();
        g.add_edge(nq(0), nt(1, 0));
        g.prune_before(Cycle::new(5));
        assert!(g.contains(nq(0)), "query nodes are never pruned by cycle");
        assert!(!g.contains(nt(1, 0)));
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn clear_resets_everything() {
        let mut g = SerializationGraph::new();
        g.add_edge(nt(0, 0), nt(1, 0));
        g.clear();
        assert!(g.is_empty());
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.earliest_cycle(), None);
    }

    #[test]
    fn apply_diff_inserts_nodes_and_edges() {
        let mut g = SerializationGraph::new();
        let diff = GraphDiff::new(
            Cycle::new(2),
            vec![t(2, 0), t(2, 1)],
            vec![(t(1, 0), t(2, 0)), (t(2, 0), t(2, 1))],
        );
        g.apply_diff(&diff);
        assert!(g.contains(nt(2, 0)) && g.contains(nt(2, 1)) && g.contains(nt(1, 0)));
        assert_eq!(g.edge_count(), 2);
        assert!(g.path_exists(nt(1, 0), nt(2, 1)));
        // re-applying is idempotent
        g.apply_diff(&diff);
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn cycles_reports_sccs() {
        let mut g = SerializationGraph::new();
        // acyclic graph: no cycles
        g.add_edge(nt(0, 0), nt(1, 0));
        g.add_edge(nt(1, 0), nt(2, 0));
        assert!(g.cycles().is_empty());
        // close a 3-cycle through a query node
        g.add_edge(nt(2, 0), nq(0));
        g.add_edge(nq(0), nt(0, 0));
        let cycles = g.cycles();
        assert_eq!(cycles.len(), 1);
        let mut comp = cycles[0].clone();
        comp.sort();
        assert_eq!(comp, vec![nt(0, 0), nt(1, 0), nt(2, 0), nq(0)]);
        // two disjoint cycles
        let mut g2 = SerializationGraph::new();
        g2.add_edge(nt(0, 0), nt(0, 1));
        g2.add_edge(nt(0, 1), nt(0, 0));
        g2.add_edge(nt(5, 0), nt(5, 1));
        g2.add_edge(nt(5, 1), nt(5, 0));
        assert_eq!(g2.cycles().len(), 2);
    }

    #[test]
    fn cycles_agrees_with_is_acyclic() {
        let mut g = SerializationGraph::new();
        for i in 0..6u32 {
            g.add_edge(nt(0, i), nt(1, (i + 1) % 6));
            g.add_edge(nt(1, i), nt(2, (i * 2) % 6));
        }
        assert_eq!(g.cycles().is_empty(), g.is_acyclic());
        g.add_edge(nt(2, 0), nt(0, 0)); // may close a cycle
        assert_eq!(g.cycles().is_empty(), g.is_acyclic());
    }

    #[test]
    fn nodes_iterator_covers_all() {
        let mut g = SerializationGraph::new();
        g.add_edge(nt(0, 0), nq(0));
        let mut nodes: Vec<Node> = g.nodes().collect();
        nodes.sort();
        assert_eq!(nodes, vec![nt(0, 0), nq(0)]);
    }

    #[test]
    fn ids_are_recycled_after_pruning() {
        let mut g = SerializationGraph::new();
        for round in 0..64u64 {
            g.add_edge(nt(round, 0), nt(round + 1, 0));
            g.prune_before(Cycle::new(round + 1));
        }
        // the intern table stays bounded by the live window, not the
        // total number of transactions ever seen
        assert!(g.node_count() <= 2);
        assert!(
            g.nodes.len() <= 4,
            "freed ids must be reused, table grew to {}",
            g.nodes.len()
        );
    }

    #[test]
    fn debug_output_is_logical_and_canonical() {
        // two graphs with the same logical content but different
        // interning histories print identically
        let mut a = SerializationGraph::new();
        a.add_edge(nt(0, 0), nt(1, 0));
        let mut b = SerializationGraph::new();
        b.add_edge(nq(7), nt(5, 5));
        b.add_edge(nt(0, 0), nt(1, 0));
        b.remove_query(QueryId::new(7));
        b.prune_before(Cycle::new(0)); // no-op, but exercises bookkeeping
        b.prune_before(Cycle::new(6));
        b.add_edge(nt(0, 0), nt(1, 0));
        // b now holds exactly a's content (T5.5 pruned, query removed)
        let _ = b.path_exists(nt(0, 0), nt(1, 0)); // dirty the scratch
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    fn clone_is_independent_and_equal() {
        let mut g = SerializationGraph::new();
        g.add_edge(nt(0, 0), nt(1, 0));
        g.add_edge(nq(1), nt(0, 0));
        let mut c = g.clone();
        assert_eq!(format!("{g:?}"), format!("{c:?}"));
        c.add_edge(nt(1, 0), nt(2, 0));
        assert_eq!(g.edge_count(), 2);
        assert_eq!(c.edge_count(), 3);
    }
}
