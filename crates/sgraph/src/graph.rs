//! The serialization graph proper.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use bpush_types::{Cycle, QueryId, TxnId};

use crate::diff::GraphDiff;
use crate::node::Node;

/// A conflict serialization graph (§3.3).
///
/// Nodes are committed server transactions plus, in client copies, the
/// client's active read-only queries. An edge `a → b` means one of `a`'s
/// operations precedes and conflicts with one of `b`'s. The graph keeps a
/// per-commit-cycle membership index so the client can implement the
/// paper's space optimization (Lemma 1): only the subgraphs `SG^k` with
/// `k ≥ c_o` — the cycle when the oldest active query first had an item
/// overwritten — need to be retained.
///
/// Cycle checks are the paper's acceptance test: a read creating edge
/// `T_l → R` is accepted iff no path `R →* T_l` exists
/// ([`SerializationGraph::would_close_cycle`]).
#[derive(Debug, Clone, Default)]
pub struct SerializationGraph {
    /// Outgoing adjacency. Presence in the map also records node
    /// membership (nodes may have no edges).
    out_edges: BTreeMap<Node, Vec<Node>>,
    /// Commit-cycle index of transaction nodes, for pruning.
    by_cycle: BTreeMap<Cycle, Vec<TxnId>>,
    /// Total number of directed edges.
    edge_count: usize,
}

impl SerializationGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        SerializationGraph::default()
    }

    /// Number of nodes currently in the graph.
    pub fn node_count(&self) -> usize {
        self.out_edges.len()
    }

    /// Number of directed edges currently in the graph.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.out_edges.is_empty()
    }

    /// Whether `node` is present.
    pub fn contains(&self, node: Node) -> bool {
        self.out_edges.contains_key(&node)
    }

    /// Inserts a node (idempotent).
    pub fn add_node(&mut self, node: Node) {
        if self.out_edges.contains_key(&node) {
            return;
        }
        self.out_edges.insert(node, Vec::new());
        if let Node::Txn(t) = node {
            self.by_cycle.entry(t.cycle()).or_default().push(t);
        }
    }

    /// Inserts a directed edge `from → to`, inserting the endpoints if
    /// needed. Returns `true` if the edge is new.
    pub fn add_edge(&mut self, from: Node, to: Node) -> bool {
        self.add_node(from);
        self.add_node(to);
        let succ = self
            .out_edges
            .get_mut(&from)
            // lint: allow(panic) — the endpoint entry was inserted earlier in this method
            .expect("endpoint inserted above");
        if succ.contains(&to) {
            return false;
        }
        succ.push(to);
        self.edge_count += 1;
        true
    }

    /// The successors of `node`, or an empty slice for unknown nodes.
    pub fn successors(&self, node: Node) -> &[Node] {
        self.out_edges.get(&node).map_or(&[], Vec::as_slice)
    }

    /// Whether a directed path `from →* to` exists (including the trivial
    /// path when `from == to` only if a real cycle through it exists —
    /// i.e. `path_exists(n, n)` is `true` only when `n` lies on a cycle).
    pub fn path_exists(&self, from: Node, to: Node) -> bool {
        if !self.contains(from) || !self.contains(to) {
            return false;
        }
        let mut stack: Vec<Node> = self.successors(from).to_vec();
        let mut visited: BTreeSet<Node> = BTreeSet::new();
        while let Some(n) = stack.pop() {
            if n == to {
                return true;
            }
            if visited.insert(n) {
                stack.extend_from_slice(self.successors(n));
            }
        }
        false
    }

    /// Whether inserting the edge `from → to` would close a cycle —
    /// the SGT acceptance test. The edge is *not* inserted.
    pub fn would_close_cycle(&self, from: Node, to: Node) -> bool {
        if from == to {
            return true;
        }
        self.path_exists(to, from)
    }

    /// Inserts `from → to` only if it closes no cycle.
    ///
    /// Returns `Ok(inserted)` where `inserted` is false for a duplicate
    /// edge, or `Err(CycleDetected)` if the edge would create a cycle (the
    /// graph is left unchanged).
    pub fn try_add_edge(&mut self, from: Node, to: Node) -> Result<bool, CycleDetected> {
        if self.would_close_cycle(from, to) {
            return Err(CycleDetected { from, to });
        }
        Ok(self.add_edge(from, to))
    }

    /// Whether the whole graph is acyclic (serialization theorem check).
    pub fn is_acyclic(&self) -> bool {
        // Iterative three-color DFS.
        #[derive(Clone, Copy, PartialEq)]
        enum Color {
            White,
            Gray,
            Black,
        }
        let mut color: BTreeMap<Node, Color> =
            self.out_edges.keys().map(|&n| (n, Color::White)).collect();
        for &start in self.out_edges.keys() {
            if color[&start] != Color::White {
                continue;
            }
            // stack of (node, next-successor-index)
            let mut stack: Vec<(Node, usize)> = vec![(start, 0)];
            color.insert(start, Color::Gray);
            while let Some(&mut (n, ref mut idx)) = stack.last_mut() {
                let succ = self.successors(n);
                if *idx < succ.len() {
                    let next = succ[*idx];
                    *idx += 1;
                    match color[&next] {
                        Color::Gray => return false,
                        Color::White => {
                            color.insert(next, Color::Gray);
                            stack.push((next, 0));
                        }
                        Color::Black => {}
                    }
                } else {
                    color.insert(n, Color::Black);
                    stack.pop();
                }
            }
        }
        true
    }

    /// Applies a broadcast [`GraphDiff`]: inserts the newly committed
    /// transactions and their conflict edges.
    pub fn apply_diff(&mut self, diff: &GraphDiff) {
        for &t in diff.committed() {
            self.add_node(Node::Txn(t));
        }
        for &(from, to) in diff.edges() {
            self.add_edge(Node::Txn(from), Node::Txn(to));
        }
    }

    /// Removes a query node and all its incident edges.
    pub fn remove_query(&mut self, query: QueryId) {
        let node = Node::Query(query);
        if let Some(succ) = self.out_edges.remove(&node) {
            self.edge_count -= succ.len();
        }
        for succ in self.out_edges.values_mut() {
            let before = succ.len();
            succ.retain(|&n| n != node);
            self.edge_count -= before - succ.len();
        }
    }

    /// Lemma-1 pruning: drops every transaction committed before `bound`
    /// together with its incident edges.
    ///
    /// Edges between server transactions always point from earlier to
    /// later commits (Claim 1: strict histories admit no edges *into* a
    /// previous cycle's subgraph), so cycles through an active query that
    /// was first invalidated at cycle `c_o` only involve transactions of
    /// cycles `≥ c_o`; pruning below `min c_o` keeps the acceptance test
    /// exact. See [`crate::SerializationGraph::would_close_cycle`].
    pub fn prune_before(&mut self, bound: Cycle) {
        let stale: Vec<TxnId> = {
            let mut stale = Vec::new();
            for (&cycle, txns) in self.by_cycle.range(..bound) {
                debug_assert!(cycle < bound);
                stale.extend_from_slice(txns);
            }
            stale
        };
        if stale.is_empty() {
            return;
        }
        let stale_nodes: BTreeSet<Node> = stale.iter().map(|&t| Node::Txn(t)).collect();
        for node in &stale_nodes {
            if let Some(succ) = self.out_edges.remove(node) {
                self.edge_count -= succ.len();
            }
        }
        for succ in self.out_edges.values_mut() {
            let before = succ.len();
            succ.retain(|n| !stale_nodes.contains(n));
            self.edge_count -= before - succ.len();
        }
        self.by_cycle = self.by_cycle.split_off(&bound);
    }

    /// Drops the entire graph content. Equivalent to pruning past the last
    /// cycle; used when no query has been invalidated (the paper's "if no
    /// items are updated, there is no space or processing overhead").
    pub fn clear(&mut self) {
        self.out_edges.clear();
        self.by_cycle.clear();
        self.edge_count = 0;
    }

    /// Iterates over all nodes in unspecified order.
    pub fn nodes(&self) -> impl Iterator<Item = Node> + '_ {
        self.out_edges.keys().copied()
    }

    /// The earliest commit cycle still retained, if any transaction nodes
    /// exist.
    pub fn earliest_cycle(&self) -> Option<Cycle> {
        self.by_cycle.keys().next().copied()
    }

    /// The strongly connected components with more than one node — i.e.
    /// the actual cycles. Empty iff the graph is acyclic (up to
    /// self-loops, which [`SerializationGraph::add_edge`] cannot create).
    /// Useful for diagnosing validator failures.
    pub fn cycles(&self) -> Vec<Vec<Node>> {
        // Iterative Tarjan SCC.
        #[derive(Clone, Copy)]
        struct Info {
            index: usize,
            lowlink: usize,
            on_stack: bool,
        }
        let mut info: BTreeMap<Node, Info> = BTreeMap::new();
        let mut stack: Vec<Node> = Vec::new();
        let mut next_index = 0usize;
        let mut out = Vec::new();

        for &root in self.out_edges.keys() {
            if info.contains_key(&root) {
                continue;
            }
            // call stack: (node, successor cursor)
            let mut call: Vec<(Node, usize)> = vec![(root, 0)];
            info.insert(
                root,
                Info {
                    index: next_index,
                    lowlink: next_index,
                    on_stack: true,
                },
            );
            stack.push(root);
            next_index += 1;
            while let Some(&mut (v, ref mut cursor)) = call.last_mut() {
                let succ = self.successors(v);
                if *cursor < succ.len() {
                    let w = succ[*cursor];
                    *cursor += 1;
                    match info.get(&w) {
                        None => {
                            info.insert(
                                w,
                                Info {
                                    index: next_index,
                                    lowlink: next_index,
                                    on_stack: true,
                                },
                            );
                            stack.push(w);
                            next_index += 1;
                            call.push((w, 0));
                        }
                        Some(wi) if wi.on_stack => {
                            let w_index = wi.index;
                            // lint: allow(panic) — Tarjan invariant: visited nodes always have an info entry
                            let vi = info.get_mut(&v).expect("visited");
                            vi.lowlink = vi.lowlink.min(w_index);
                        }
                        Some(_) => {}
                    }
                } else {
                    call.pop();
                    // lint: allow(panic) — Tarjan invariant: visited nodes always have an info entry
                    let vi = *info.get(&v).expect("visited");
                    if let Some(&(parent, _)) = call.last() {
                        // lint: allow(panic) — Tarjan invariant: visited nodes always have an info entry
                        let pi = info.get_mut(&parent).expect("visited");
                        pi.lowlink = pi.lowlink.min(vi.lowlink);
                    }
                    if vi.lowlink == vi.index {
                        let mut component = Vec::new();
                        while let Some(w) = stack.pop() {
                            // lint: allow(panic) — Tarjan invariant: visited nodes always have an info entry
                            info.get_mut(&w).expect("on stack").on_stack = false;
                            component.push(w);
                            if w == v {
                                break;
                            }
                        }
                        if component.len() > 1 {
                            out.push(component);
                        }
                    }
                }
            }
        }
        out
    }
}

/// Error returned by [`SerializationGraph::try_add_edge`] when the edge
/// would make the graph cyclic — i.e. the corresponding read must be
/// rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CycleDetected {
    /// Source of the offending edge.
    pub from: Node,
    /// Target of the offending edge.
    pub to: Node,
}

impl fmt::Display for CycleDetected {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "edge {} -> {} would close a serialization cycle",
            self.from, self.to
        )
    }
}

impl std::error::Error for CycleDetected {}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(cycle: u64, seq: u32) -> TxnId {
        TxnId::new(Cycle::new(cycle), seq)
    }

    fn nt(cycle: u64, seq: u32) -> Node {
        Node::Txn(t(cycle, seq))
    }

    fn nq(q: u64) -> Node {
        Node::Query(QueryId::new(q))
    }

    #[test]
    fn empty_graph_properties() {
        let g = SerializationGraph::new();
        assert!(g.is_empty());
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert!(g.is_acyclic());
        assert!(!g.path_exists(nt(0, 0), nt(0, 1)));
        assert_eq!(g.earliest_cycle(), None);
    }

    #[test]
    fn add_edge_dedupes() {
        let mut g = SerializationGraph::new();
        assert!(g.add_edge(nt(0, 0), nt(1, 0)));
        assert!(!g.add_edge(nt(0, 0), nt(1, 0)));
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.successors(nt(0, 0)), &[nt(1, 0)]);
    }

    #[test]
    fn path_queries() {
        let mut g = SerializationGraph::new();
        g.add_edge(nt(0, 0), nt(1, 0));
        g.add_edge(nt(1, 0), nt(2, 0));
        g.add_edge(nt(2, 0), nt(3, 0));
        g.add_node(nt(9, 9));
        assert!(g.path_exists(nt(0, 0), nt(3, 0)));
        assert!(!g.path_exists(nt(3, 0), nt(0, 0)));
        assert!(!g.path_exists(nt(0, 0), nt(9, 9)));
        // no self-path without a cycle
        assert!(!g.path_exists(nt(1, 0), nt(1, 0)));
    }

    #[test]
    fn would_close_cycle_matches_paper_scenario() {
        // Figure 3: R read x from T_k; T_f (cycle o) overwrote an item R
        // had read; a conflict path T_f ->* T_l exists; reading from T_l
        // must be rejected.
        let mut g = SerializationGraph::new();
        let r = nq(0);
        let t_f = nt(2, 0);
        let mid = nt(3, 1);
        let t_l = nt(4, 0);
        g.add_edge(t_f, mid);
        g.add_edge(mid, t_l);
        g.add_edge(r, t_f); // precedence: T_f overwrote an item R read
        assert!(g.would_close_cycle(t_l, r), "dependency edge closes cycle");
        // a writer not reachable from T_f is fine
        let other = nt(4, 1);
        g.add_node(other);
        assert!(!g.would_close_cycle(other, r));
    }

    #[test]
    fn self_edge_is_a_cycle() {
        let g = SerializationGraph::new();
        assert!(g.would_close_cycle(nt(0, 0), nt(0, 0)));
    }

    #[test]
    fn try_add_edge_rejects_and_preserves() {
        let mut g = SerializationGraph::new();
        g.add_edge(nt(0, 0), nt(1, 0));
        let err = g.try_add_edge(nt(1, 0), nt(0, 0)).unwrap_err();
        assert_eq!(err.from, nt(1, 0));
        assert_eq!(err.to, nt(0, 0));
        assert_eq!(g.edge_count(), 1, "graph unchanged after rejection");
        assert!(g.is_acyclic());
        assert!(err.to_string().contains("serialization cycle"));
        assert!(g.try_add_edge(nt(0, 0), nt(2, 0)).unwrap());
    }

    #[test]
    fn is_acyclic_detects_long_cycle() {
        let mut g = SerializationGraph::new();
        g.add_edge(nt(0, 0), nt(1, 0));
        g.add_edge(nt(1, 0), nt(2, 0));
        assert!(g.is_acyclic());
        g.add_edge(nt(2, 0), nt(0, 0));
        assert!(!g.is_acyclic());
    }

    #[test]
    fn remove_query_drops_incident_edges() {
        let mut g = SerializationGraph::new();
        g.add_edge(nq(1), nt(1, 0));
        g.add_edge(nt(0, 0), nq(1));
        g.add_edge(nt(0, 0), nt(1, 0));
        assert_eq!(g.edge_count(), 3);
        g.remove_query(QueryId::new(1));
        assert_eq!(g.edge_count(), 1);
        assert!(!g.contains(nq(1)));
        assert!(g.contains(nt(0, 0)) && g.contains(nt(1, 0)));
    }

    #[test]
    fn prune_before_drops_old_cycles_only() {
        let mut g = SerializationGraph::new();
        g.add_edge(nt(0, 0), nt(1, 0));
        g.add_edge(nt(1, 0), nt(2, 0));
        g.add_edge(nt(2, 0), nt(3, 0));
        g.prune_before(Cycle::new(2));
        assert!(!g.contains(nt(0, 0)));
        assert!(!g.contains(nt(1, 0)));
        assert!(g.contains(nt(2, 0)) && g.contains(nt(3, 0)));
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.earliest_cycle(), Some(Cycle::new(2)));
        // path query within the retained window is unaffected
        assert!(g.path_exists(nt(2, 0), nt(3, 0)));
    }

    #[test]
    fn prune_before_noop_when_nothing_old() {
        let mut g = SerializationGraph::new();
        g.add_edge(nt(5, 0), nt(6, 0));
        let edges = g.edge_count();
        g.prune_before(Cycle::new(3));
        assert_eq!(g.edge_count(), edges);
        assert_eq!(g.node_count(), 2);
    }

    #[test]
    fn prune_keeps_query_nodes() {
        let mut g = SerializationGraph::new();
        g.add_edge(nq(0), nt(1, 0));
        g.prune_before(Cycle::new(5));
        assert!(g.contains(nq(0)), "query nodes are never pruned by cycle");
        assert!(!g.contains(nt(1, 0)));
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn clear_resets_everything() {
        let mut g = SerializationGraph::new();
        g.add_edge(nt(0, 0), nt(1, 0));
        g.clear();
        assert!(g.is_empty());
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.earliest_cycle(), None);
    }

    #[test]
    fn apply_diff_inserts_nodes_and_edges() {
        let mut g = SerializationGraph::new();
        let diff = GraphDiff::new(
            Cycle::new(2),
            vec![t(2, 0), t(2, 1)],
            vec![(t(1, 0), t(2, 0)), (t(2, 0), t(2, 1))],
        );
        g.apply_diff(&diff);
        assert!(g.contains(nt(2, 0)) && g.contains(nt(2, 1)) && g.contains(nt(1, 0)));
        assert_eq!(g.edge_count(), 2);
        assert!(g.path_exists(nt(1, 0), nt(2, 1)));
        // re-applying is idempotent
        g.apply_diff(&diff);
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn cycles_reports_sccs() {
        let mut g = SerializationGraph::new();
        // acyclic graph: no cycles
        g.add_edge(nt(0, 0), nt(1, 0));
        g.add_edge(nt(1, 0), nt(2, 0));
        assert!(g.cycles().is_empty());
        // close a 3-cycle through a query node
        g.add_edge(nt(2, 0), nq(0));
        g.add_edge(nq(0), nt(0, 0));
        let cycles = g.cycles();
        assert_eq!(cycles.len(), 1);
        let mut comp = cycles[0].clone();
        comp.sort();
        assert_eq!(comp, vec![nt(0, 0), nt(1, 0), nt(2, 0), nq(0)]);
        // two disjoint cycles
        let mut g2 = SerializationGraph::new();
        g2.add_edge(nt(0, 0), nt(0, 1));
        g2.add_edge(nt(0, 1), nt(0, 0));
        g2.add_edge(nt(5, 0), nt(5, 1));
        g2.add_edge(nt(5, 1), nt(5, 0));
        assert_eq!(g2.cycles().len(), 2);
    }

    #[test]
    fn cycles_agrees_with_is_acyclic() {
        let mut g = SerializationGraph::new();
        for i in 0..6u32 {
            g.add_edge(nt(0, i), nt(1, (i + 1) % 6));
            g.add_edge(nt(1, i), nt(2, (i * 2) % 6));
        }
        assert_eq!(g.cycles().is_empty(), g.is_acyclic());
        g.add_edge(nt(2, 0), nt(0, 0)); // may close a cycle
        assert_eq!(g.cycles().is_empty(), g.is_acyclic());
    }

    #[test]
    fn nodes_iterator_covers_all() {
        let mut g = SerializationGraph::new();
        g.add_edge(nt(0, 0), nq(0));
        let mut nodes: Vec<Node> = g.nodes().collect();
        nodes.sort();
        assert_eq!(nodes, vec![nt(0, 0), nq(0)]);
    }
}
