//! Graph nodes.

use std::fmt;

use bpush_types::{QueryId, TxnId};

/// A node of the serialization graph: either a committed server (update)
/// transaction, or a client-local read-only transaction.
///
/// Query nodes only ever exist in *client* copies of the graph — the
/// server graph (and the broadcast [`crate::GraphDiff`]) contains only
/// committed server transactions.
///
/// # Example
/// ```
/// use bpush_sgraph::Node;
/// use bpush_types::{Cycle, QueryId, TxnId};
/// let t = Node::Txn(TxnId::new(Cycle::new(2), 1));
/// let q = Node::Query(QueryId::new(4));
/// assert!(t.is_txn() && !t.is_query());
/// assert!(q.is_query());
/// assert_eq!(format!("{t}"), "T2.1");
/// assert_eq!(format!("{q}"), "Q4");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Node {
    /// A committed server update transaction.
    Txn(TxnId),
    /// A local active read-only transaction.
    Query(QueryId),
}

impl Node {
    /// Whether this node is a server transaction.
    pub const fn is_txn(self) -> bool {
        matches!(self, Node::Txn(_))
    }

    /// Whether this node is a read-only query.
    pub const fn is_query(self) -> bool {
        matches!(self, Node::Query(_))
    }

    /// The server transaction id, if this is a transaction node.
    pub const fn as_txn(self) -> Option<TxnId> {
        match self {
            Node::Txn(t) => Some(t),
            Node::Query(_) => None,
        }
    }

    /// The query id, if this is a query node.
    pub const fn as_query(self) -> Option<QueryId> {
        match self {
            Node::Query(q) => Some(q),
            Node::Txn(_) => None,
        }
    }
}

impl fmt::Display for Node {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Node::Txn(t) => write!(f, "{t}"),
            Node::Query(q) => write!(f, "{q}"),
        }
    }
}

impl From<TxnId> for Node {
    fn from(t: TxnId) -> Self {
        Node::Txn(t)
    }
}

impl From<QueryId> for Node {
    fn from(q: QueryId) -> Self {
        Node::Query(q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpush_types::Cycle;

    #[test]
    fn accessors_and_conversions() {
        let t = TxnId::new(Cycle::new(1), 2);
        let q = QueryId::new(3);
        let nt = Node::from(t);
        let nq = Node::from(q);
        assert_eq!(nt.as_txn(), Some(t));
        assert_eq!(nt.as_query(), None);
        assert_eq!(nq.as_query(), Some(q));
        assert_eq!(nq.as_txn(), None);
        assert!(nt.is_txn());
        assert!(nq.is_query());
    }

    #[test]
    fn ordering_puts_txns_before_queries() {
        // The derived order is only used for deterministic iteration; it
        // must at least be a total order.
        let mut v = [
            Node::Query(QueryId::new(0)),
            Node::Txn(TxnId::new(Cycle::new(0), 0)),
        ];
        v.sort();
        assert!(v[0].is_txn());
    }
}
