//! Property tests for the serialization graph.

// Integration tests are exempt from the panic-freedom policy
// (mirrors `allow-unwrap-in-tests` in clippy.toml and the `#[cfg(test)]`
// carve-out in `cargo xtask lint`).
#![allow(clippy::unwrap_used)]
use proptest::prelude::*;

use bpush_sgraph::baseline::BaselineGraph;
use bpush_sgraph::{Node, SerializationGraph};
use bpush_types::{Cycle, QueryId, TxnId};

/// Strategy: a random "server history" of edges that always point from an
/// earlier transaction to a later one — strict histories can produce
/// nothing else (Claim 1).
fn forward_edges() -> impl Strategy<Value = Vec<(TxnId, TxnId)>> {
    proptest::collection::vec((0u64..8, 0u32..4, 0u64..8, 0u32..4), 0..64).prop_map(|raw| {
        raw.into_iter()
            .filter_map(|(c1, s1, c2, s2)| {
                let a = TxnId::new(Cycle::new(c1), s1);
                let b = TxnId::new(Cycle::new(c2), s2);
                match a.cmp(&b) {
                    std::cmp::Ordering::Less => Some((a, b)),
                    std::cmp::Ordering::Greater => Some((b, a)),
                    std::cmp::Ordering::Equal => None,
                }
            })
            .collect()
    })
}

proptest! {
    /// A pure server graph (edges only from older to newer transactions)
    /// is always acyclic — the serialization-theorem precondition the SGT
    /// method relies on.
    #[test]
    fn forward_only_graphs_are_acyclic(edges in forward_edges()) {
        let mut g = SerializationGraph::new();
        for (a, b) in edges {
            g.add_edge(Node::Txn(a), Node::Txn(b));
        }
        prop_assert!(g.is_acyclic());
    }

    /// try_add_edge never lets the graph become cyclic, whatever edges are
    /// attempted (including backward ones).
    #[test]
    fn try_add_edge_preserves_acyclicity(
        raw in proptest::collection::vec((0u64..6, 0u32..3, 0u64..6, 0u32..3), 0..64),
    ) {
        let mut g = SerializationGraph::new();
        for (c1, s1, c2, s2) in raw {
            let a = Node::Txn(TxnId::new(Cycle::new(c1), s1));
            let b = Node::Txn(TxnId::new(Cycle::new(c2), s2));
            let _ = g.try_add_edge(a, b);
            prop_assert!(g.is_acyclic());
        }
    }

    /// Pruning below the earliest cycle touched by any path query never
    /// changes the outcome of path queries within the retained window.
    #[test]
    fn prune_preserves_window_reachability(
        edges in forward_edges(),
        bound in 0u64..8,
    ) {
        let mut g = SerializationGraph::new();
        for (a, b) in &edges {
            g.add_edge(Node::Txn(*a), Node::Txn(*b));
        }
        // record all pairwise reachability among retained nodes
        let bound = Cycle::new(bound);
        let retained: Vec<Node> = g
            .nodes()
            .filter(|n| n.as_txn().map_or(true, |t| t.cycle() >= bound))
            .collect();
        let before: Vec<Vec<bool>> = retained
            .iter()
            .map(|&a| retained.iter().map(|&b| g.path_exists(a, b)).collect())
            .collect();
        g.prune_before(bound);
        // Forward-only edges mean any path between retained (>= bound)
        // nodes only traverses retained nodes, so reachability must match.
        let after: Vec<Vec<bool>> = retained
            .iter()
            .map(|&a| retained.iter().map(|&b| g.path_exists(a, b)).collect())
            .collect();
        prop_assert_eq!(before, after);
    }

    /// Edge and node counts stay consistent under arbitrary interleavings
    /// of inserts, query removals and prunes.
    #[test]
    fn counts_stay_consistent(
        ops in proptest::collection::vec((0u8..4, 0u64..6, 0u32..3, 0u64..6), 0..80),
    ) {
        let mut g = SerializationGraph::new();
        for (op, c, s, q) in ops {
            match op {
                0 => {
                    g.add_edge(
                        Node::Txn(TxnId::new(Cycle::new(c), s)),
                        Node::Query(QueryId::new(q)),
                    );
                }
                1 => {
                    g.add_edge(
                        Node::Query(QueryId::new(q)),
                        Node::Txn(TxnId::new(Cycle::new(c), s)),
                    );
                }
                2 => g.remove_query(QueryId::new(q)),
                _ => g.prune_before(Cycle::new(c)),
            }
            // recount ground truth
            let truth: usize = g.nodes().map(|n| g.successors(n).len()).sum();
            prop_assert_eq!(g.edge_count(), truth);
            // no dangling successors
            for n in g.nodes() {
                for &m in g.successors(n) {
                    prop_assert!(g.contains(m), "dangling edge target {m}");
                }
            }
        }
    }

    /// Differential test: the interned graph and the original
    /// `BTreeMap`-based [`BaselineGraph`] answer every query identically
    /// under arbitrary interleavings of `add_edge`, `would_close_cycle`,
    /// `remove_query` and `prune_before`. This is the conformance
    /// argument for the interning rewrite: same operation sequence, same
    /// observable state, edge by edge.
    #[test]
    fn interned_graph_agrees_with_baseline(
        ops in proptest::collection::vec((0u8..6, 0u64..6, 0u32..3, 0u64..6), 0..100),
    ) {
        let mut fast = SerializationGraph::new();
        let mut slow = BaselineGraph::new();
        for (op, c, s, q) in ops {
            let txn = Node::Txn(TxnId::new(Cycle::new(c), s));
            let query = Node::Query(QueryId::new(q));
            match op {
                0 => {
                    prop_assert_eq!(fast.add_edge(txn, query), slow.add_edge(txn, query));
                }
                1 => {
                    prop_assert_eq!(fast.add_edge(query, txn), slow.add_edge(query, txn));
                }
                2 => {
                    // server-to-server conflict edge (possibly backward —
                    // both must agree even on edges a real history can't
                    // produce)
                    let other = Node::Txn(TxnId::new(Cycle::new(q), s));
                    prop_assert_eq!(fast.add_edge(txn, other), slow.add_edge(txn, other));
                }
                3 => {
                    fast.remove_query(QueryId::new(q));
                    slow.remove_query(QueryId::new(q));
                }
                4 => {
                    fast.prune_before(Cycle::new(c));
                    slow.prune_before(Cycle::new(c));
                }
                _ => {
                    prop_assert_eq!(
                        fast.would_close_cycle(txn, query),
                        slow.would_close_cycle(txn, query)
                    );
                }
            }
            // observable state matches after every step
            prop_assert_eq!(fast.node_count(), slow.node_count());
            prop_assert_eq!(fast.edge_count(), slow.edge_count());
            prop_assert_eq!(fast.earliest_cycle(), slow.earliest_cycle());
            prop_assert_eq!(fast.is_acyclic(), slow.is_acyclic());
            let fast_nodes: Vec<Node> = fast.nodes().collect();
            let slow_nodes: Vec<Node> = slow.nodes().collect();
            prop_assert_eq!(&fast_nodes, &slow_nodes, "node sets diverged");
            for n in fast_nodes {
                prop_assert_eq!(
                    fast.successors(n),
                    slow.successors(n),
                    "successor lists diverged at {}",
                    n
                );
                prop_assert_eq!(fast.path_exists(n, txn), slow.path_exists(n, txn));
            }
        }
    }
}
