//! Proves the lint engine against fixture crates with seeded violations
//! (one per rule, plus negative controls), then self-checks that the real
//! workspace lints clean.

use std::path::{Path, PathBuf};

use xtask::{lint_workspace, workspace_crates, LintError, Rule};

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
        .join("tainted")
}

fn real_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("xtask lives at <root>/crates/xtask")
        .to_path_buf()
}

/// Every seeded violation is reported with its exact rule, file, and
/// line — and nothing else is.
#[test]
fn fixtures_yield_exact_diagnostics() {
    let diags = lint_workspace(&fixture_root()).expect("fixture tree lints");
    let got: Vec<(&str, String, usize)> = diags
        .iter()
        .map(|d| (d.rule.code(), d.file.display().to_string(), d.line))
        .collect();

    let want: Vec<(&str, String, usize)> = [
        // badattrs: both mandatory crate-root attributes missing.
        ("L3/crate-attrs", "crates/badattrs/src/lib.rs", 1),
        ("L3/crate-attrs", "crates/badattrs/src/lib.rs", 1),
        // badlock: std::sync::Mutex where parking_lot is standard.
        ("L5/locks", "crates/badlock/src/lib.rs", 6),
        // badpanic: one naked unwrap, one malformed annotation.
        ("L1/panic", "crates/badpanic/src/lib.rs", 7),
        ("L0/annotation", "crates/badpanic/src/lib.rs", 18),
        // badproto: a ReadOnlyProtocol impl with no conformance evidence.
        ("L4/conformance", "crates/badproto/src/lib.rs", 9),
        // client: a deterministic crate with a lossy narrowing cast.
        ("L6/casts", "crates/client/src/lib.rs", 7),
        // core: a deterministic crate touching HashMap (decl + body).
        ("L2/determinism", "crates/core/src/lib.rs", 6),
        ("L2/determinism", "crates/core/src/lib.rs", 7),
        // server: a deterministic crate printing to stdout.
        ("L7/stdout", "crates/server/src/lib.rs", 7),
    ]
    .into_iter()
    .map(|(r, f, l)| (r, f.to_string(), l))
    .collect();

    assert_eq!(
        got,
        want,
        "diagnostics mismatch; full output:\n{}",
        diags
            .iter()
            .map(|d| format!("  {d}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// Negative controls inside the fixtures: the annotated `.expect(` and
/// the `#[cfg(test)]` unwrap must not appear among the findings.
#[test]
fn fixture_carve_outs_hold() {
    let diags = lint_workspace(&fixture_root()).expect("fixture tree lints");
    for d in &diags {
        if d.file.ends_with("badpanic/src/lib.rs") {
            assert_ne!(d.line, 13, "annotated expect must be exempt: {d}");
            assert!(
                d.line < 21,
                "nothing inside #[cfg(test)] may be flagged: {d}"
            );
        }
        if d.file.ends_with("client/src/lib.rs") {
            assert_eq!(
                d.line, 7,
                "widening, annotated, and #[cfg(test)] casts must be exempt: {d}"
            );
        }
        if d.file.ends_with("server/src/lib.rs") {
            assert_eq!(
                d.line, 7,
                "annotated and #[cfg(test)] prints must be exempt: {d}"
            );
        }
    }
}

/// Diagnostics render as `CODE file:line — message` (what CI greps for).
#[test]
fn diagnostic_display_format() {
    let diags = lint_workspace(&fixture_root()).expect("fixture tree lints");
    let unwrap_diag = diags
        .iter()
        .find(|d| d.rule == Rule::Panic)
        .expect("fixture seeds an L1 finding");
    let rendered = unwrap_diag.to_string();
    assert!(
        rendered.starts_with("L1/panic crates/badpanic/src/lib.rs:7 — "),
        "unexpected rendering: {rendered}"
    );
    assert!(rendered.contains("panic path `.unwrap()`"), "{rendered}");
}

/// The real workspace satisfies its own rule catalog — the same check CI
/// runs via `cargo xtask lint`.
#[test]
fn real_workspace_is_clean() {
    let root = real_root();
    let crates = workspace_crates(&root).expect("workspace enumerates");
    assert!(
        crates.len() >= 10,
        "expected the full crate set, got {:?}",
        crates.iter().map(|(n, _)| n.as_str()).collect::<Vec<_>>()
    );
    let diags = lint_workspace(&root).expect("workspace lints");
    assert!(
        diags.is_empty(),
        "the workspace must lint clean:\n{}",
        diags
            .iter()
            .map(|d| format!("  {d}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// A root without a `crates/` directory is a structural error, not an
/// empty result.
#[test]
fn missing_workspace_is_an_error() {
    let bogus = fixture_root().join("crates").join("badattrs");
    match lint_workspace(&bogus) {
        Err(LintError::Io { .. } | LintError::NotAWorkspace(_)) => {}
        other => panic!("expected a structural error, got {other:?}"),
    }
}
