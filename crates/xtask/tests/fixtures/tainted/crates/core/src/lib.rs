#![forbid(unsafe_code)]
#![deny(missing_docs)]
//! Fixture: a deterministic crate using a hash collection (rule L2).

/// Builds a map with nondeterministic iteration order.
pub fn build() -> std::collections::HashMap<u32, u32> {
    std::collections::HashMap::new()
}
