#![forbid(unsafe_code)]
#![deny(missing_docs)]
//! Fixture: a protocol impl the battery never exercises (rule L4).

/// A protocol implementation with no test evidence.
#[derive(Debug)]
pub struct Widget;

impl ReadOnlyProtocol for Widget {}
