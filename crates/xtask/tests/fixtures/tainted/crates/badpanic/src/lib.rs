#![forbid(unsafe_code)]
#![deny(missing_docs)]
//! Fixture: panic-freedom violations (rule L1) and annotations (L0).

/// Unwraps in library code — the L1 violation under test.
pub fn boom(x: Option<u32>) -> u32 {
    x.unwrap()
}

/// Annotated expect — must NOT be flagged.
pub fn fine(x: Option<u32>) -> u32 {
    // lint: allow(panic) — fixture exercises the escape hatch
    x.expect("annotated")
}

/// Carries a malformed annotation — the L0 violation under test.
pub fn odd() {
    // lint: allow(bogus) — no such rule
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_exempt() {
        let _ = Some(1).unwrap();
    }
}
