#![forbid(unsafe_code)]
#![deny(missing_docs)]
//! Fixture: a deterministic crate writing to the terminal (rule L7).

/// Reports progress straight to stdout.
pub fn report(n: u64) {
    println!("cycle done");
    // lint: allow(stdout) — fixture negative control: annotated output
    eprintln!("still allowed");
}

#[cfg(test)]
mod tests {
    #[test]
    fn prints_inside_tests_are_exempt() {
        println!("test chatter");
    }
}
