#![forbid(unsafe_code)]
#![deny(missing_docs)]
//! Fixture: a lock from the standard library (rule L5).

/// Guards nothing.
pub static LOCK: std::sync::Mutex<u32> = std::sync::Mutex::new(0);
