//! Fixture: crate root missing the mandatory attributes (rule L3).

/// Nothing to see.
pub fn noop() {}
