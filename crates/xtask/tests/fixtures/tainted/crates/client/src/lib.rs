#![forbid(unsafe_code)]
#![deny(missing_docs)]
//! Fixture: a deterministic crate with a lossy numeric cast (rule L6).

/// Truncates silently — the L6 violation under test.
pub fn narrow(x: u64) -> u32 {
    x as u32
}

/// Widening casts are exempt — must NOT be flagged.
pub fn widen(x: u32) -> u64 {
    x as u64
}

/// Annotated narrowing — must NOT be flagged.
pub fn bounded(x: u64) -> u8 {
    // lint: allow(casts) — fixture exercises the escape hatch
    (x % 256) as u8
}

#[cfg(test)]
mod tests {
    #[test]
    fn casts_in_tests_are_exempt() {
        let _ = 300u64 as u16;
    }
}
