#![forbid(unsafe_code)]
#![deny(missing_docs)]
//! Fixture: the helper crate the interprocedural fixtures reach into.

/// Pure helper — safe to reach from any contract (the passing target).
pub fn pure_len(xs: &[u32]) -> usize {
    xs.len()
}

/// Allocating helper — the L8 violating target.
pub fn grow(xs: &mut Vec<u32>, x: u32) {
    xs.push(x);
}

/// Clock helper — the L9 and L11 violating target.
pub fn stamp_micros() -> u64 {
    let _t = std::time::Instant::now();
    0
}
