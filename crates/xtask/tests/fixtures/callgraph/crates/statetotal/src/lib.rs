#![forbid(unsafe_code)]
#![deny(missing_docs)]
//! Fixture: L13 state-machine exhaustiveness over a protocol enum.

/// The protocol automaton states.
// bpush-lint: protocol_enum — fixture: handler matches must stay total
pub enum Step {
    /// Waiting for the next control report.
    Idle,
    /// Reads in flight.
    Reading,
    /// Terminal.
    Done,
}

/// Names every variant — the passing case.
pub fn advance(s: Step) -> u32 {
    match s {
        Step::Idle => 0,
        Step::Reading => 1,
        Step::Done => 2,
    }
}

/// Hides `Reading` and `Done` behind a wildcard — the violation.
pub fn label(s: Step) -> u32 {
    match s {
        Step::Idle => 0,
        _ => 9,
    }
}
