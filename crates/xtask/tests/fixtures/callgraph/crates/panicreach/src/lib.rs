#![forbid(unsafe_code)]
#![deny(missing_docs)]
//! Fixture: L12 panic reachability from a hot entry point.

/// Checked probe — the passing case.
// bpush-lint: hot_path — fixture: checked accessor only
pub fn probe(xs: &[u32], i: usize) -> u32 {
    xs.get(i).copied().unwrap_or(0)
}

/// Reaches a raw index through a local helper — the violation.
// bpush-lint: hot_path — fixture: reaches an indexing panic one hop away
pub fn scan(xs: &[u32], i: usize) -> u32 {
    pick(xs, i)
}

fn pick(xs: &[u32], i: usize) -> u32 {
    xs[i]
}

/// Divides by a caller-supplied value — the second violation.
// bpush-lint: hot_path — fixture: non-constant divisor
pub fn share(total: u64, n: u64) -> u64 {
    total / n
}
