#![forbid(unsafe_code)]
#![deny(missing_docs)]
//! Fixture: L8 hot-path allocation-freedom through helper indirection.

use fixture_util::{grow, pure_len};

/// Allocation-free probe — the passing case.
// bpush-lint: hot_path — fixture: allocation-free probe
pub fn probe(xs: &[u32]) -> usize {
    pure_len(xs)
}

/// Reaches an allocation through the helper crate — the violation.
// bpush-lint: hot_path — fixture: reaches an allocation one hop away
pub fn feed(xs: &mut Vec<u32>, x: u32) {
    grow(xs, x);
}
