#![forbid(unsafe_code)]
#![deny(missing_docs)]
//! Fixture: seeded mutant — behaviorally clean on every input today's
//! tests feed it, but L13 and L14 catch the latent wildcard arm and
//! the unchecked decode index.

// bpush-lint: decode_path — fixture: mutant decode helper

/// Report-entry kind on the mutant's wire.
// bpush-lint: protocol_enum — fixture: the mutant's wire vocabulary
pub enum Kind {
    /// Per-item entry.
    Item,
    /// Per-bucket entry.
    Bucket,
}

/// Hides `Bucket` behind a wildcard — caught by L13, invisible to
/// behavioral tests until a third kind exists.
pub fn width_of(kind: Kind) -> usize {
    match kind {
        Kind::Item => 4,
        _ => 2,
    }
}

/// Reads the first entry with an unchecked index — caught by L14,
/// invisible to behavioral tests that only feed non-empty frames.
pub fn decode_first(bytes: &[u8]) -> u8 {
    bytes[0]
}
