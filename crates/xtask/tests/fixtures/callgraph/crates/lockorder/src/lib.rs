#![forbid(unsafe_code)]
#![deny(missing_docs)]
//! Fixture: L10 lock-order cycle closed through a call under a guard.

use parking_lot::Mutex;

/// Two guarded slots whose owners disagree on acquisition order.
pub struct Slots {
    /// First slot.
    pub alpha: Mutex<u32>,
    /// Second slot.
    pub beta: Mutex<u32>,
}

impl Slots {
    /// Locks `beta` alone; `forward` calls this while holding `alpha`.
    pub fn bump_beta(&self) -> u32 {
        let b = self.beta.lock();
        *b
    }

    /// Takes `alpha`, then `beta` through [`Self::bump_beta`] — one
    /// direction of the cycle, closed interprocedurally.
    pub fn forward(&self) -> u32 {
        let a = self.alpha.lock();
        *a + self.bump_beta()
    }

    /// Takes `beta` then `alpha` directly — the inversion under test.
    pub fn backward(&self) -> u32 {
        let b = self.beta.lock();
        let a = self.alpha.lock();
        *a + *b
    }
}
