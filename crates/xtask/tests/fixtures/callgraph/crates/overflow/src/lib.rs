#![forbid(unsafe_code)]
#![deny(missing_docs)]
//! Fixture: L15 overflow discipline on tick-typed values.

/// A broadcast-cycle stamp.
pub struct Cycle(u64);

impl Cycle {
    /// The raw counter.
    pub fn number(self) -> u64 {
        self.0
    }

    /// Saturating advance — the passing case.
    pub fn advance(self) -> Cycle {
        Cycle(self.0.saturating_add(1))
    }

    /// Unchecked advance — the violation.
    pub fn bump(self) -> Cycle {
        Cycle(self.0 + 1)
    }
}

/// Unchecked age computation — the second violation.
pub fn age(now: Cycle, then: Cycle) -> u64 {
    now.number() - then.number()
}
