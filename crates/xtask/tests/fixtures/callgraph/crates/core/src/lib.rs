#![forbid(unsafe_code)]
#![deny(missing_docs)]
//! Fixture: L11 taint — determinism violations L2's text match misses.

use fixture_util::{pure_len, stamp_micros};
use std::time::Instant as Stamp;

/// Deterministic helper call — the passing case.
pub fn deterministic_len(xs: &[u32]) -> usize {
    pure_len(xs)
}

/// Reaches a clock through the helper crate — the cross-crate leg.
pub fn seeded_stamp() -> u64 {
    stamp_micros()
}

/// Uses the renamed clock type in a signature; the body stays pure so
/// only the `use` rename above is flagged.
pub fn window(_since: Stamp) -> u64 {
    0
}
