#![forbid(unsafe_code)]
#![deny(missing_docs)]
//! Fixture: L14 decode-path bounds discipline.

// bpush-lint: decode_path — fixture: all input via take_*

/// Checked reader — the passing case.
pub fn take_u8(bytes: &[u8], pos: &mut usize) -> Option<u8> {
    let b = bytes.get(*pos).copied();
    *pos += 1;
    b
}

/// Decodes a header through a raw-indexing helper — the violation.
pub fn decode_header(bytes: &[u8]) -> u8 {
    peek(bytes)
}

fn peek(bytes: &[u8]) -> u8 {
    bytes[0]
}
