#![forbid(unsafe_code)]
#![deny(missing_docs)]
//! Fixture: L9 sans-IO purity — the whole file is protocol-core.

// bpush-lint: sans_io — fixture: protocol core
use fixture_util::{pure_len, stamp_micros};

/// Pure computation — the passing case.
pub fn width(xs: &[u32]) -> usize {
    pure_len(xs)
}

/// Reaches a clock through the helper crate — the violation.
pub fn decode(xs: &[u32]) -> u64 {
    let _n = pure_len(xs);
    stamp_micros()
}
