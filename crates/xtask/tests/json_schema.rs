//! Schema tests for the three machine-readable outputs: `cargo xtask
//! lint --json` ([`xtask::diagnostics_to_json`]), `cargo xtask mc
//! --json` ([`bpush_mc::render_json`]), and `cargo xtask bench`
//! ([`xtask::bench::render_json`]). All emitters hand-roll their JSON,
//! so this file parses their output with an independent minimal JSON
//! reader and checks every documented key and type — including the
//! checked-in `BENCH_3.json` performance-trajectory report.

// Integration tests are exempt from the panic-freedom policy
// (mirrors `allow-unwrap-in-tests` in clippy.toml and the `#[cfg(test)]`
// carve-out in `cargo xtask lint`).
#![allow(clippy::unwrap_used)]

use std::path::PathBuf;

use xtask::{diagnostics_to_json, Diagnostic, Rule};

// ---------------------------------------------------------------------
// A minimal strict JSON reader (objects, arrays, strings, unsigned
// integers, booleans, null — the subset both emitters produce).
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(u64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get(&self, key: &str) -> &Json {
        match self {
            Json::Obj(pairs) => pairs
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .unwrap_or_else(|| panic!("missing key `{key}` in {self:?}")),
            other => panic!("expected an object, got {other:?}"),
        }
    }

    fn keys(&self) -> Vec<&str> {
        match self {
            Json::Obj(pairs) => pairs.iter().map(|(k, _)| k.as_str()).collect(),
            other => panic!("expected an object, got {other:?}"),
        }
    }

    fn as_str(&self) -> &str {
        match self {
            Json::Str(s) => s,
            other => panic!("expected a string, got {other:?}"),
        }
    }

    fn as_u64(&self) -> u64 {
        match self {
            Json::Num(n) => *n,
            other => panic!("expected a number, got {other:?}"),
        }
    }

    fn as_bool(&self) -> bool {
        match self {
            Json::Bool(b) => *b,
            other => panic!("expected a bool, got {other:?}"),
        }
    }

    fn as_arr(&self) -> &[Json] {
        match self {
            Json::Arr(items) => items,
            other => panic!("expected an array, got {other:?}"),
        }
    }
}

fn parse_json(text: &str) -> Json {
    let bytes: Vec<char> = text.chars().collect();
    let mut pos = 0;
    let value = parse_value(&bytes, &mut pos);
    skip_ws(&bytes, &mut pos);
    assert_eq!(pos, bytes.len(), "trailing garbage after JSON value");
    value
}

fn skip_ws(b: &[char], pos: &mut usize) {
    while b.get(*pos).is_some_and(|c| c.is_ascii_whitespace()) {
        *pos += 1;
    }
}

fn expect(b: &[char], pos: &mut usize, c: char) {
    assert_eq!(b.get(*pos), Some(&c), "expected `{c}` at offset {pos}");
    *pos += 1;
}

fn parse_value(b: &[char], pos: &mut usize) -> Json {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some('{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&'}') {
                *pos += 1;
                return Json::Obj(pairs);
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos);
                skip_ws(b, pos);
                expect(b, pos, ':');
                let value = parse_value(b, pos);
                pairs.push((key, value));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(',') => *pos += 1,
                    Some('}') => {
                        *pos += 1;
                        return Json::Obj(pairs);
                    }
                    other => panic!("expected `,` or `}}`, got {other:?}"),
                }
            }
        }
        Some('[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&']') {
                *pos += 1;
                return Json::Arr(items);
            }
            loop {
                items.push(parse_value(b, pos));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(',') => *pos += 1,
                    Some(']') => {
                        *pos += 1;
                        return Json::Arr(items);
                    }
                    other => panic!("expected `,` or `]`, got {other:?}"),
                }
            }
        }
        Some('"') => Json::Str(parse_string(b, pos)),
        Some('t') => {
            assert_eq!(b[*pos..*pos + 4].iter().collect::<String>(), "true");
            *pos += 4;
            Json::Bool(true)
        }
        Some('f') => {
            assert_eq!(b[*pos..*pos + 5].iter().collect::<String>(), "false");
            *pos += 5;
            Json::Bool(false)
        }
        Some('n') => {
            assert_eq!(b[*pos..*pos + 4].iter().collect::<String>(), "null");
            *pos += 4;
            Json::Null
        }
        Some(c) if c.is_ascii_digit() => {
            let start = *pos;
            while b.get(*pos).is_some_and(char::is_ascii_digit) {
                *pos += 1;
            }
            Json::Num(b[start..*pos].iter().collect::<String>().parse().unwrap())
        }
        other => panic!("unexpected character {other:?} at offset {pos}"),
    }
}

fn parse_string(b: &[char], pos: &mut usize) -> String {
    expect(b, pos, '"');
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            Some('"') => {
                *pos += 1;
                return out;
            }
            Some('\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('n') => out.push('\n'),
                    Some('r') => out.push('\r'),
                    Some('t') => out.push('\t'),
                    Some('u') => {
                        let hex: String = b[*pos + 1..*pos + 5].iter().collect();
                        let code = u32::from_str_radix(&hex, 16).unwrap();
                        out.push(char::from_u32(code).unwrap());
                        *pos += 4;
                    }
                    other => panic!("bad escape {other:?}"),
                }
                *pos += 1;
            }
            Some(&c) => {
                assert!(u32::from(c) >= 0x20, "unescaped control character");
                out.push(c);
                *pos += 1;
            }
            None => panic!("unterminated string"),
        }
    }
}

// ---------------------------------------------------------------------
// `cargo xtask lint --json`
// ---------------------------------------------------------------------

/// The documented schema: `{"clean": bool, "diagnostics": [{"rule",
/// "file", "line", "message"}]}`, in that key order.
#[test]
fn lint_json_matches_the_documented_schema() {
    let diags = vec![
        Diagnostic {
            rule: Rule::Panic,
            file: PathBuf::from("crates/x/src/lib.rs"),
            line: 7,
            message: "panic path `.unwrap()`".to_string(),
        },
        Diagnostic {
            rule: Rule::Casts,
            file: PathBuf::from("crates/y/src/lib.rs"),
            line: 12,
            message: "lossy `as u32` cast with a \"quoted\" fragment\nand a newline".to_string(),
        },
    ];
    let root = parse_json(&diagnostics_to_json(&diags));

    assert_eq!(root.keys(), ["clean", "diagnostics"]);
    assert!(!root.get("clean").as_bool());
    let rendered = root.get("diagnostics").as_arr();
    assert_eq!(rendered.len(), 2);
    for (d, j) in diags.iter().zip(rendered) {
        assert_eq!(j.keys(), ["rule", "file", "line", "message"]);
        assert_eq!(j.get("rule").as_str(), d.rule.code());
        assert_eq!(j.get("file").as_str(), d.file.display().to_string());
        assert_eq!(j.get("line").as_u64(), d.line as u64);
        assert_eq!(j.get("message").as_str(), d.message);
    }
}

/// No findings ⇒ `clean` is `true` and the array is empty.
#[test]
fn lint_json_clean_case() {
    let root = parse_json(&diagnostics_to_json(&[]));
    assert!(root.get("clean").as_bool());
    assert!(root.get("diagnostics").as_arr().is_empty());
}

/// The full-report schema behind `cargo xtask lint --json`:
/// `{"clean", "files", "timing": {"read_ns", "lex_ns", "index_ns",
/// "rules_ns", "workers"}, "suppressions": [{"rule", "count"}],
/// "diagnostics"}`, with one suppression entry per rule, covering all
/// sixteen rule ids in catalog order — the escape-hatch budget is part
/// of the machine contract.
#[test]
fn lint_report_json_matches_the_documented_schema() {
    let report = xtask::LintReport {
        diagnostics: vec![Diagnostic {
            rule: Rule::HotAlloc,
            file: PathBuf::from("crates/x/src/lib.rs"),
            line: 3,
            message: "hot_path fn `f` reaches `Box::new`".to_string(),
        }],
        files: 7,
        timing: xtask::LintTiming {
            read_ns: 11,
            lex_ns: 22,
            index_ns: 27,
            rules_ns: 33,
            workers: 4,
        },
        suppressions: xtask::ALL_RULES.iter().map(|r| (*r, 0)).collect(),
        hot_functions: vec!["sgraph::path_exists".to_string()],
        sans_io_files: vec!["crates/broadcast/src/wire.rs".to_string()],
        protocol_enums: vec!["Method".to_string()],
        decode_files: vec!["crates/broadcast/src/wire.rs".to_string()],
    };
    let root = parse_json(&xtask::report_to_json(&report));

    assert_eq!(
        root.keys(),
        ["clean", "files", "timing", "suppressions", "diagnostics"]
    );
    assert!(!root.get("clean").as_bool());
    assert_eq!(root.get("files").as_u64(), 7);

    let timing = root.get("timing");
    assert_eq!(
        timing.keys(),
        ["read_ns", "lex_ns", "index_ns", "rules_ns", "workers"]
    );
    assert_eq!(timing.get("read_ns").as_u64(), 11);
    assert_eq!(timing.get("lex_ns").as_u64(), 22);
    assert_eq!(timing.get("index_ns").as_u64(), 27);
    assert_eq!(timing.get("rules_ns").as_u64(), 33);
    assert_eq!(timing.get("workers").as_u64(), 4);

    let rules: Vec<&str> = root
        .get("suppressions")
        .as_arr()
        .iter()
        .map(|s| {
            assert_eq!(s.keys(), ["rule", "count"]);
            let _ = s.get("count").as_u64();
            s.get("rule").as_str()
        })
        .collect();
    assert_eq!(
        rules,
        [
            "L0/annotation",
            "L1/panic",
            "L2/determinism",
            "L3/crate-attrs",
            "L4/conformance",
            "L5/locks",
            "L6/casts",
            "L7/stdout",
            "L8/hot-alloc",
            "L9/sans-io",
            "L10/lock-order",
            "L11/taint",
            "L12/panic-reach",
            "L13/state-total",
            "L14/decode-bounds",
            "L15/overflow",
        ]
    );

    let rendered = root.get("diagnostics").as_arr();
    assert_eq!(rendered.len(), 1);
    assert_eq!(rendered[0].get("rule").as_str(), "L8/hot-alloc");
}

// ---------------------------------------------------------------------
// `cargo xtask mc --json`
// ---------------------------------------------------------------------

/// The documented schema: `{"scope", "passed", "reports": [{"protocol",
/// "executions", "committed", "aborted", "distinct_states",
/// "deduped_validations", "violation"}]}`; `violation` is `null` for a
/// passing method and `{"fresh_writer", "stale_overwrite", "schedule"}`
/// for the broken fixture — with `schedule` round-tripping through
/// `Schedule::parse`.
#[test]
fn mc_json_matches_the_documented_schema() {
    let scope = bpush_mc::Scope::ci();
    let reports = vec![
        bpush_mc::check_spec(bpush_mc::ProtocolSpec::parse("inv-only").unwrap(), &scope).unwrap(),
        bpush_mc::check_spec(bpush_mc::ProtocolSpec::BrokenInvalidation, &scope).unwrap(),
    ];
    let root = parse_json(&bpush_mc::render_json(&scope, &reports));

    assert_eq!(root.keys(), ["scope", "passed", "reports"]);
    assert_eq!(root.get("scope").as_str(), "ci");
    assert!(!root.get("passed").as_bool());

    let rendered = root.get("reports").as_arr();
    assert_eq!(rendered.len(), 2);
    for (r, j) in reports.iter().zip(rendered) {
        assert_eq!(
            j.keys(),
            [
                "protocol",
                "executions",
                "committed",
                "aborted",
                "distinct_states",
                "deduped_validations",
                "violation"
            ]
        );
        assert_eq!(j.get("protocol").as_str(), r.spec.name());
        assert_eq!(j.get("executions").as_u64(), r.executions);
        assert_eq!(j.get("committed").as_u64(), r.committed);
        assert_eq!(j.get("aborted").as_u64(), r.aborted);
        assert_eq!(j.get("distinct_states").as_u64(), r.distinct_states);
        assert_eq!(j.get("deduped_validations").as_u64(), r.deduped_validations);
    }

    assert_eq!(*rendered[0].get("violation"), Json::Null);
    let violation = rendered[1].get("violation");
    assert_eq!(
        violation.keys(),
        ["fresh_writer", "stale_overwrite", "schedule"]
    );
    assert_eq!(violation.get("fresh_writer").as_str(), "T0.0");
    assert_eq!(violation.get("stale_overwrite").as_str(), "T0.0");
    let (spec, schedule) = bpush_mc::Schedule::parse(violation.get("schedule").as_str())
        .expect("embedded schedule round-trips");
    assert_eq!(spec, bpush_mc::ProtocolSpec::BrokenInvalidation);
    assert_eq!(schedule.reads.len(), 2);
}

// ---------------------------------------------------------------------
// `cargo xtask bench`
// ---------------------------------------------------------------------

/// Checks one parsed `bpush-bench-v1` document against the documented
/// schema: `{"schema", "seed", "quick", "substrate": [{"name", "iters",
/// "total_ns", "ns_per_iter"}], "sgt_speedup_pct", "methods":
/// [{"method", "wall_ns", "queries", "committed"}]}`, all numbers
/// unsigned integers, keys in that order.
fn assert_bench_schema(root: &Json) {
    assert_eq!(
        root.keys(),
        [
            "schema",
            "seed",
            "quick",
            "substrate",
            "sgt_speedup_pct",
            "methods"
        ]
    );
    assert_eq!(root.get("schema").as_str(), "bpush-bench-v1");
    let _ = root.get("seed").as_u64();
    let _ = root.get("quick").as_bool();
    let _ = root.get("sgt_speedup_pct").as_u64();
    for s in root.get("substrate").as_arr() {
        assert_eq!(s.keys(), ["name", "iters", "total_ns", "ns_per_iter"]);
        assert!(!s.get("name").as_str().is_empty());
        assert!(s.get("iters").as_u64() > 0);
        let _ = s.get("total_ns").as_u64();
        let _ = s.get("ns_per_iter").as_u64();
    }
    for m in root.get("methods").as_arr() {
        assert_eq!(m.keys(), ["method", "wall_ns", "queries", "committed"]);
        assert!(!m.get("method").as_str().is_empty());
        let _ = m.get("wall_ns").as_u64();
        assert!(m.get("committed").as_u64() <= m.get("queries").as_u64());
    }
}

/// The renderer pins the documented key order for a synthetic report.
#[test]
fn bench_json_matches_the_documented_schema() {
    let report = xtask::bench::BenchReport {
        seed: 0x1999_1cdc,
        quick: false,
        substrate: vec![
            xtask::bench::SubstrateBench {
                name: "sgt-substrate-interned".to_owned(),
                iters: 10,
                total_ns: 1_000,
                ns_per_iter: 100,
            },
            xtask::bench::SubstrateBench {
                name: "sgt-substrate-baseline".to_owned(),
                iters: 10,
                total_ns: 5_000,
                ns_per_iter: 500,
            },
        ],
        sgt_speedup_pct: 500,
        methods: vec![xtask::bench::MethodBench {
            method: "sgt".to_owned(),
            wall_ns: 123,
            queries: 40,
            committed: 37,
        }],
    };
    let root = parse_json(&xtask::bench::render_json(&report));
    assert_bench_schema(&root);
    assert_eq!(root.get("seed").as_u64(), 0x1999_1cdc);
    assert!(!root.get("quick").as_bool());
    assert_eq!(root.get("sgt_speedup_pct").as_u64(), 500);
    let methods = root.get("methods").as_arr();
    assert_eq!(methods[0].get("method").as_str(), "sgt");
    assert_eq!(methods[0].get("committed").as_u64(), 37);
}

/// The checked-in `BENCH_3.json` parses, satisfies the schema, covers
/// every method, and records the interned graph at or above the 2x
/// target over the BTree baseline.
#[test]
fn checked_in_bench_report_holds_the_speedup_target() {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_3.json");
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("reading {}: {e}", path.display()));
    let root = parse_json(text.trim_end());
    assert_bench_schema(&root);
    assert!(!root.get("quick").as_bool(), "check in a full-scale report");

    let names: Vec<&str> = root
        .get("substrate")
        .as_arr()
        .iter()
        .map(|s| s.get("name").as_str())
        .collect();
    assert_eq!(names, ["sgt-substrate-interned", "sgt-substrate-baseline"]);

    let speedup = root.get("sgt_speedup_pct").as_u64();
    assert!(
        speedup >= 200,
        "interned graph must stay >= 2x the baseline, got {speedup}% \
         (the ratio is wall-clock and machine-dependent: regenerate \
         BENCH_3.json with `cargo xtask bench` on a quiet machine at \
         full scale — see EXPERIMENTS.md)"
    );

    let methods: Vec<&str> = root
        .get("methods")
        .as_arr()
        .iter()
        .map(|m| m.get("method").as_str())
        .collect();
    let expected: Vec<&str> = bpush_core::Method::ALL.iter().map(|m| m.name()).collect();
    assert_eq!(methods, expected);
}

/// The checked-in `BENCH_8.json` parses, satisfies the schema, carries
/// the PR-8 word-parallel substrate pairs with the word-AND paths at or
/// above the 150% floor over the PR-3 galloping paths, and records the
/// sharded-runner scaling entries at 1/2/4 worker threads.
#[test]
fn checked_in_pr8_report_holds_the_word_parallel_floor() {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_8.json");
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("reading {}: {e}", path.display()));
    let root = parse_json(text.trim_end());
    assert_bench_schema(&root);
    assert!(!root.get("quick").as_bool(), "check in a full-scale report");

    let substrate = root.get("substrate").as_arr();
    let total_ns_of = |name: &str| -> u64 {
        substrate
            .iter()
            .find(|s| s.get("name").as_str() == name)
            .unwrap_or_else(|| panic!("BENCH_8.json is missing substrate entry `{name}`"))
            .get("total_ns")
            .as_u64()
    };
    for (words, gallop) in [
        ("report-membership-words", "report-membership-gallop"),
        ("batch-validation-words", "batch-validation-gallop"),
    ] {
        let words_ns = total_ns_of(words);
        let gallop_ns = total_ns_of(gallop);
        let speedup_pct = gallop_ns.saturating_mul(100) / words_ns.max(1);
        assert!(
            speedup_pct >= 150,
            "{words} must stay >= 150% of {gallop}, got {speedup_pct}% \
             (the ratio is wall-clock and machine-dependent: regenerate \
             BENCH_8.json with `cargo xtask bench --json --out BENCH_8.json` \
             on a quiet machine at full scale — see EXPERIMENTS.md)"
        );
    }
    for workers in ["1w", "2w", "4w"] {
        let _ = total_ns_of(&format!("sharded-runner-{workers}"));
    }

    let methods: Vec<&str> = root
        .get("methods")
        .as_arr()
        .iter()
        .map(|m| m.get("method").as_str())
        .collect();
    let expected: Vec<&str> = bpush_core::Method::ALL.iter().map(|m| m.name()).collect();
    assert_eq!(methods, expected);
}

// ---------------------------------------------------------------------
// `cargo xtask trace` (`metrics.json`)
// ---------------------------------------------------------------------

/// The documented `bpush-trace-v1` schema: `{"schema", "method",
/// "seed", "quick", "cycles", "queries", "committed", "aborted",
/// "events", "dropped", "counters": [{"name", "value"}], "histograms":
/// [{"name", "count", "sum", "min", "max", "p50", "p90", "p99",
/// "buckets": [{"floor", "ceil", "count"}]}]}`, all numbers unsigned
/// integers, keys in that order; the percentile estimates are ordered
/// within `[min, max]` whenever the histogram is non-empty.
fn assert_trace_schema(root: &Json) {
    assert_eq!(
        root.keys(),
        [
            "schema",
            "method",
            "seed",
            "quick",
            "cycles",
            "queries",
            "committed",
            "aborted",
            "events",
            "dropped",
            "counters",
            "histograms",
        ]
    );
    assert_eq!(root.get("schema").as_str(), "bpush-trace-v1");
    let _ = root.get("seed").as_u64();
    let _ = root.get("quick").as_bool();
    assert_eq!(
        root.get("committed").as_u64() + root.get("aborted").as_u64(),
        root.get("queries").as_u64(),
        "committed + aborted must partition queries"
    );
    for c in root.get("counters").as_arr() {
        assert_eq!(c.keys(), ["name", "value"]);
        let _ = c.get("value").as_u64();
    }
    for h in root.get("histograms").as_arr() {
        assert_eq!(
            h.keys(),
            ["name", "count", "sum", "min", "max", "p50", "p90", "p99", "buckets"]
        );
        if h.get("count").as_u64() > 0 {
            let (min, max) = (h.get("min").as_u64(), h.get("max").as_u64());
            let (p50, p90, p99) = (
                h.get("p50").as_u64(),
                h.get("p90").as_u64(),
                h.get("p99").as_u64(),
            );
            assert!(
                min <= p50 && p50 <= p90 && p90 <= p99 && p99 <= max,
                "percentiles must be ordered within [min, max]: {h:?}"
            );
        }
        let mut bucket_total = 0;
        for b in h.get("buckets").as_arr() {
            assert_eq!(b.keys(), ["floor", "ceil", "count"]);
            assert!(b.get("floor").as_u64() <= b.get("ceil").as_u64());
            bucket_total += b.get("count").as_u64();
        }
        assert_eq!(
            bucket_total,
            h.get("count").as_u64(),
            "non-empty buckets must account for every sample"
        );
    }
}

/// A real quick trace satisfies the schema, its counter table
/// reconciles with the headline numbers, and the chrome export parses
/// as a structurally valid `trace_event` document.
#[test]
fn trace_json_matches_the_documented_schema() {
    let report = xtask::trace::run_trace(bpush_core::Method::Sgt, true).unwrap();
    let root = parse_json(&xtask::trace::render_metrics_json(&report));
    assert_trace_schema(&root);

    // The counter table carries the same totals as the headline keys.
    let counter = |name: &str| {
        root.get("counters")
            .as_arr()
            .iter()
            .find(|c| c.get("name").as_str() == name)
            .map(|c| c.get("value").as_u64())
            .unwrap_or(0)
    };
    assert_eq!(counter("queries.committed"), root.get("committed").as_u64());
    assert_eq!(counter("queries.aborted"), root.get("aborted").as_u64());
    assert_eq!(counter("server.cycles"), root.get("cycles").as_u64());
    assert_eq!(
        root.get("events").as_u64(),
        report.snapshot.events.len() as u64
    );

    // The chrome export is valid JSON of the trace_event shape.
    let chrome = parse_json(&bpush_obs::export::chrome_trace(&report.snapshot));
    assert_eq!(chrome.keys(), ["traceEvents", "displayTimeUnit"]);
    let events = chrome.get("traceEvents").as_arr();
    assert!(!events.is_empty());
    for e in events {
        let ph = e.get("ph").as_str();
        assert!(
            matches!(ph, "M" | "B" | "E" | "i"),
            "unexpected phase {ph:?}"
        );
        let _ = e.get("pid").as_u64();
        let _ = e.get("tid").as_u64();
    }
}

// ---------------------------------------------------------------------
// bpush-explain-v1 (`cargo xtask explain --json`)
// ---------------------------------------------------------------------

/// Runs the seeded `BrokenInvalidation` mutant under monitors with the
/// flight recorder attached and returns the rendered capture (the same
/// fixture `xtask::explain`'s own tests use).
fn broken_capture_fixture() -> String {
    let config = bpush_types::SimConfig {
        server: bpush_types::ServerConfig {
            broadcast_size: 200,
            update_range: 100,
            server_read_range: 200,
            updates_per_cycle: 20,
            txns_per_cycle: 5,
            ..bpush_types::ServerConfig::default()
        },
        client: bpush_types::ClientConfig {
            read_range: 100,
            reads_per_query: 6,
            ..bpush_types::ClientConfig::default()
        },
        n_clients: 3,
        queries_per_client: 15,
        warmup_cycles: 3,
        max_cycles: 20_000,
        seed: 99,
    };
    let method = bpush_core::Method::InvalidationOnly;
    let slot = bpush_sim::CaptureSlot::new();
    let sim = bpush_sim::Simulation::new(config.clone(), method)
        .unwrap()
        .with_protocol_factory(|| Box::new(bpush_mc::BrokenInvalidation::new()))
        .with_monitors(bpush_sim::monitors_for(&config, method))
        .with_flight_recorder(8, slot.clone());
    sim.run().unwrap();
    slot.take().expect("the mutant trips a capture").render()
}

/// `cargo xtask explain --json` on a capture emits the single-line
/// `bpush-explain-v1` document with a locked key order.
#[test]
fn explain_capture_json_matches_the_documented_schema() {
    let capture = broken_capture_fixture();
    let explanation = xtask::explain::explain(&capture).unwrap();
    let root = parse_json(&xtask::explain::render_json(&explanation));
    assert_eq!(
        root.keys(),
        [
            "schema",
            "input",
            "method",
            "seed",
            "clients",
            "kind",
            "client",
            "query",
            "cycle",
            "item",
            "write_cycle",
            "report_cycle",
            "cycle_distance",
            "report_entry_found",
            "rule",
            "frames",
            "dropped",
            "fingerprint",
        ]
    );
    assert_eq!(root.get("schema").as_str(), "bpush-explain-v1");
    assert_eq!(root.get("input").as_str(), "capture");
    assert_eq!(root.get("method").as_str(), "inv-only");
    assert!([
        "currency",
        "serializability",
        "coverage",
        "stream",
        "abort-watch"
    ]
    .contains(&root.get("kind").as_str()));
    let _ = root.get("seed").as_u64();
    let _ = root.get("clients").as_u64();
    let _ = root.get("client").as_u64();
    let _ = root.get("query").as_u64();
    let _ = root.get("cycle").as_u64();
    // The resolution keys are nullable integers.
    for key in ["item", "write_cycle", "report_cycle", "cycle_distance"] {
        match root.get(key) {
            Json::Num(_) | Json::Null => {}
            other => panic!("`{key}` must be an integer or null, got {other:?}"),
        }
    }
    // The mutant capture resolves fully: the acceptance criterion.
    assert!(root.get("report_entry_found").as_bool());
    assert!(root.get("rule").as_str().starts_with("inv-only: "));
    assert!(root.get("frames").as_u64() >= 1, "at least one ring frame");
    let _ = root.get("dropped").as_u64();
    let fp = root.get("fingerprint").as_str();
    assert_eq!(fp.len(), 16, "fingerprint is 16 hex digits: {fp:?}");
    assert!(fp.chars().all(|c| c.is_ascii_hexdigit()));
}

/// `cargo xtask explain --json` on a `metrics.json` trace emits the
/// trace variant of `bpush-explain-v1` with a locked key order.
#[test]
fn explain_trace_json_matches_the_documented_schema() {
    let report = xtask::trace::run_trace(bpush_core::Method::InvalidationOnly, true).unwrap();
    let metrics = xtask::trace::render_metrics_json(&report);
    let explanation = xtask::explain::explain(&metrics).unwrap();
    let root = parse_json(&xtask::explain::render_json(&explanation));
    assert_eq!(
        root.keys(),
        [
            "schema",
            "input",
            "method",
            "seed",
            "quick",
            "queries",
            "committed",
            "aborted",
            "aborts",
        ]
    );
    assert_eq!(root.get("schema").as_str(), "bpush-explain-v1");
    assert_eq!(root.get("input").as_str(), "trace");
    assert_eq!(root.get("method").as_str(), "inv-only");
    assert!(root.get("quick").as_bool());
    let queries = root.get("queries").as_u64();
    let committed = root.get("committed").as_u64();
    let aborted = root.get("aborted").as_u64();
    assert_eq!(committed + aborted, queries);
    let mut breakdown = 0;
    for entry in root.get("aborts").as_arr() {
        assert_eq!(entry.keys(), ["reason", "count"]);
        assert!(!entry.get("reason").as_str().is_empty());
        breakdown += entry.get("count").as_u64();
    }
    assert_eq!(breakdown, aborted, "abort reasons partition the aborts");
}

/// The checked-in `BENCH_10.json` parses, satisfies the schema, and
/// holds the PR-10 monitor-overhead ceiling: the monitors-on substrate
/// run must retain at least 90% of the monitors-off throughput.
#[test]
fn checked_in_pr10_report_holds_the_monitor_overhead_floor() {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_10.json");
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("reading {}: {e}", path.display()));
    let root = parse_json(text.trim_end());
    assert_bench_schema(&root);
    assert!(!root.get("quick").as_bool(), "check in a full-scale report");

    let substrate = root.get("substrate").as_arr();
    let total_ns_of = |name: &str| -> u64 {
        substrate
            .iter()
            .find(|s| s.get("name").as_str() == name)
            .unwrap_or_else(|| panic!("BENCH_10.json is missing substrate entry `{name}`"))
            .get("total_ns")
            .as_u64()
    };
    let off_ns = total_ns_of("monitors-off");
    let on_ns = total_ns_of("monitors-on");
    let retained_pct = off_ns.saturating_mul(100) / on_ns.max(1);
    assert!(
        retained_pct >= 90,
        "the monitored run must retain >= 90% of unmonitored throughput, \
         got {retained_pct}% (wall-clock and machine-dependent: regenerate \
         BENCH_10.json with `cargo xtask bench --json --out BENCH_10.json` \
         on a quiet machine at full scale — see EXPERIMENTS.md)"
    );
}
