//! Proves the interprocedural rules (L8–L15) against a fixture workspace
//! with one passing and one violating case per rule, then self-checks the
//! real workspace's contract surfaces: the hot-path set must cover the
//! PR-3 hot functions, the sans-IO surface must cover the protocol core,
//! the protocol-enum and decode-path surfaces must cover the wire
//! vocabulary, and the escape-hatch budget must stay within its pinned
//! ceiling.

use std::path::{Path, PathBuf};

use xtask::{lint_workspace, lint_workspace_report, lint_workspace_report_with_workers, Rule};

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
        .join("callgraph")
}

fn real_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("xtask lives at <root>/crates/xtask")
        .to_path_buf()
}

/// Every seeded interprocedural violation is reported with its exact
/// rule, file, and line — and the passing twins stay silent.
#[test]
fn fixtures_yield_exact_interprocedural_diagnostics() {
    let diags = lint_workspace(&fixture_root()).expect("fixture tree lints");
    let got: Vec<(&str, String, usize)> = diags
        .iter()
        .map(|d| (d.rule.code(), d.file.display().to_string(), d.line))
        .collect();

    let want: Vec<(&str, String, usize)> = [
        // core: the renamed `Instant` import (alias leg) …
        ("L11/taint", "crates/core/src/lib.rs", 6),
        // … and the clock reached through the helper crate (cross-crate leg).
        ("L11/taint", "crates/core/src/lib.rs", 14),
        // decode: `decode_header` reaches a raw index through `peek`;
        // the checked `take_u8` twin is clean.
        ("L14/decode-bounds", "crates/decode/src/lib.rs", 20),
        // hotpath: `feed` allocates one hop away; `probe` is clean.
        ("L8/hot-alloc", "crates/hotpath/src/lib.rs", 15),
        // lockorder: the alpha→beta edge (via the call under the guard)
        // that closes the cycle against backward's beta→alpha.
        ("L10/lock-order", "crates/lockorder/src/lib.rs", 26),
        // mutant: the seeded wildcard arm and unchecked decode index.
        ("L13/state-total", "crates/mutant/src/lib.rs", 23),
        ("L14/decode-bounds", "crates/mutant/src/lib.rs", 30),
        // overflow: unchecked tick arithmetic on both operand shapes;
        // the saturating `advance` twin is clean.
        ("L15/overflow", "crates/overflow/src/lib.rs", 21),
        ("L15/overflow", "crates/overflow/src/lib.rs", 27),
        // panicreach: a hot entry reaching an index one hop away and a
        // non-constant divisor; the checked `probe` twin is clean.
        ("L12/panic-reach", "crates/panicreach/src/lib.rs", 13),
        ("L12/panic-reach", "crates/panicreach/src/lib.rs", 23),
        // sansio: `decode` reaches a clock; `width` is pure.
        ("L9/sans-io", "crates/sansio/src/lib.rs", 14),
        // statetotal: the wildcard arm; the exhaustive `advance` twin is
        // clean.
        ("L13/state-total", "crates/statetotal/src/lib.rs", 29),
    ]
    .into_iter()
    .map(|(r, f, l)| (r, f.to_string(), l))
    .collect();

    assert_eq!(
        got,
        want,
        "diagnostics mismatch; full output:\n{}",
        diags
            .iter()
            .map(|d| format!("  {d}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// The seeded determinism mutant (`use std::time::Instant as Stamp;`
/// plus a helper-indirected clock read) evades L2's text match but is
/// caught twice by L11's token-level taint.
#[test]
fn taint_mutant_passes_l2_but_is_caught_by_l11() {
    let diags = lint_workspace(&fixture_root()).expect("fixture tree lints");
    let core_diags: Vec<_> = diags
        .iter()
        .filter(|d| d.file.starts_with("crates/core"))
        .collect();
    assert!(
        core_diags.iter().all(|d| d.rule == Rule::Taint),
        "the mutant must evade every rule except L11: {core_diags:?}"
    );
    assert_eq!(core_diags.len(), 2, "both taint legs must fire");
    assert!(
        !core_diags.iter().any(|d| d.rule == Rule::Determinism),
        "L2's text match must NOT see the renamed import"
    );
}

/// Diagnostics carry the resolved call chain and the needle's exact
/// location, so a violation two crates away is still actionable.
#[test]
fn diagnostic_messages_name_the_chain_and_needle() {
    let diags = lint_workspace(&fixture_root()).expect("fixture tree lints");
    let msg = |rule: Rule| {
        diags
            .iter()
            .find(|d| d.rule == rule)
            .map(|d| d.message.clone())
            .unwrap_or_default()
    };
    let hot = msg(Rule::HotAlloc);
    assert!(hot.contains("`feed`"), "{hot}");
    assert!(hot.contains("crates/util/src/lib.rs:12"), "{hot}");
    assert!(hot.contains("feed → grow"), "{hot}");

    let sans = msg(Rule::SansIo);
    assert!(sans.contains("`decode`"), "{sans}");
    assert!(sans.contains("`Instant::now`"), "{sans}");
    assert!(sans.contains("decode → stamp_micros"), "{sans}");

    let lock = msg(Rule::LockOrder);
    assert!(
        lock.contains("lockorder/alpha → lockorder/beta → lockorder/alpha"),
        "{lock}"
    );

    let taint = msg(Rule::Taint);
    assert!(taint.contains("`Stamp`"), "{taint}");
    assert!(taint.contains("std::time::Instant"), "{taint}");

    let reach = msg(Rule::PanicReach);
    assert!(reach.contains("`scan`"), "{reach}");
    assert!(reach.contains("crates/panicreach/src/lib.rs:18"), "{reach}");
    assert!(reach.contains("scan → pick"), "{reach}");

    let state = msg(Rule::StateTotal);
    assert!(
        state.contains("`Kind`") || state.contains("`Step`"),
        "{state}"
    );
    assert!(state.contains("hides"), "{state}");

    let decode = msg(Rule::DecodeBounds);
    assert!(decode.contains("`bytes[…]`"), "{decode}");
    assert!(decode.contains("take_*"), "{decode}");

    let overflow = msg(Rule::Overflow);
    assert!(overflow.contains("tick-typed"), "{overflow}");
}

/// The L14 chain enrichment names the decode entry that reaches the raw
/// access, and the L13 message lists exactly the hidden variants.
#[test]
fn dataflow_messages_carry_chains_and_hidden_variants() {
    let diags = lint_workspace(&fixture_root()).expect("fixture tree lints");
    let decode = diags
        .iter()
        .find(|d| d.rule == Rule::DecodeBounds && d.file.starts_with("crates/decode"))
        .expect("the decode fixture violation fires");
    assert!(
        decode
            .message
            .contains("(reached from decode entry via decode_header → peek)"),
        "{}",
        decode.message
    );

    let state = diags
        .iter()
        .find(|d| d.rule == Rule::StateTotal && d.file.starts_with("crates/statetotal"))
        .expect("the statetotal fixture violation fires");
    assert!(
        state.message.contains("hides `Reading`, `Done`"),
        "{}",
        state.message
    );
}

/// The seeded mutant (`mutant` fixture crate) is behaviorally identical
/// to its checked twin on every input today's tests feed it — the
/// tier-1-style assertions below pass — yet L13 and L14 catch the
/// latent wildcard arm and unchecked index at their exact lines.
#[test]
fn seeded_mutant_passes_behavioral_tests_but_is_caught_by_l13_and_l14() {
    // Behavioral twins of the mutant's two functions (same bodies the
    // fixture carries), plus the checked variants a fix would install.
    enum Kind {
        Item,
        #[allow(dead_code)]
        Bucket,
    }
    let mutant_width = |kind: &Kind| -> usize {
        match kind {
            Kind::Item => 4,
            _ => 2,
        }
    };
    let checked_width = |kind: &Kind| -> usize {
        match kind {
            Kind::Item => 4,
            Kind::Bucket => 2,
        }
    };
    let mutant_decode = |bytes: &[u8]| -> u8 { bytes[0] };
    let checked_decode = |bytes: &[u8]| -> Option<u8> { bytes.first().copied() };

    // Tier-1-style behavioral assertions: on every valid input the
    // mutant is indistinguishable from the checked twin.
    for kind in [Kind::Item, Kind::Bucket] {
        assert_eq!(mutant_width(&kind), checked_width(&kind));
    }
    for frame in [&[7u8, 1, 2][..], &[0][..]] {
        assert_eq!(Some(mutant_decode(frame)), checked_decode(frame));
    }

    // …and yet the lint pins both latent defects to their exact lines.
    let diags = lint_workspace(&fixture_root()).expect("fixture tree lints");
    let mutant: Vec<(Rule, usize)> = diags
        .iter()
        .filter(|d| d.file.starts_with("crates/mutant"))
        .map(|d| (d.rule, d.line))
        .collect();
    assert_eq!(
        mutant,
        [(Rule::StateTotal, 23), (Rule::DecodeBounds, 30)],
        "the mutant must be caught by exactly L13 and L14"
    );
}

/// Restricting to a single rule keeps exactly that rule's findings —
/// the `--rule` contract, checked for each of the four dataflow rules.
#[test]
fn single_rule_filtering_isolates_each_dataflow_rule() {
    let diags = lint_workspace(&fixture_root()).expect("fixture tree lints");
    for (rule, expected) in [
        (Rule::PanicReach, 2),
        (Rule::StateTotal, 2),
        (Rule::DecodeBounds, 2),
        (Rule::Overflow, 2),
    ] {
        let only: Vec<_> = diags.iter().filter(|d| d.rule == rule).collect();
        assert_eq!(only.len(), expected, "{}: {only:?}", rule.code());
    }
}

/// The per-file pass is order-stable: any worker count yields the
/// byte-identical report (satellite of the parallel read+lex pass).
#[test]
fn worker_count_does_not_change_the_report() {
    let one = lint_workspace_report_with_workers(&fixture_root(), 1).expect("serial pass lints");
    let many = lint_workspace_report_with_workers(&fixture_root(), 7).expect("parallel pass lints");
    let serial: Vec<String> = one.diagnostics.iter().map(|d| d.to_string()).collect();
    let parallel: Vec<String> = many.diagnostics.iter().map(|d| d.to_string()).collect();
    assert_eq!(serial, parallel, "diagnostics must not depend on workers");
    assert_eq!(one.files, many.files);
    assert_eq!(one.suppressions, many.suppressions);
    assert_eq!(one.hot_functions, many.hot_functions);
    assert_eq!(one.protocol_enums, many.protocol_enums);
    assert_eq!(one.decode_files, many.decode_files);
    assert_eq!(one.timing.workers, 1);
    assert_eq!(many.timing.workers, 7usize.clamp(1, one.files));
}

/// The workspace hot-path set provably covers the PR-3 hot functions:
/// removing a `hot_path` marker from any of these (e.g. from
/// `SerializationGraph::path_exists`) fails this test.
#[test]
fn hot_path_set_covers_the_pr3_hot_functions() {
    let report = lint_workspace_report(&real_root()).expect("workspace lints");
    const REQUIRED: &[&str] = &[
        // PR-3 SGT hot path (allocation-freedom contract).
        "sgraph::path_exists",
        "sgraph::would_close_cycle",
        "sgraph::remove_query",
        // Per-cycle report probes.
        "broadcast::any_stale",
        "broadcast::any_invalidated",
        "broadcast::matches_in",
        "broadcast::any_entry_matching",
        "broadcast::gallop_to",
        "broadcast::lookup",
        // Broadcast feed decode path.
        "broadcast::take",
        "broadcast::take_u32",
        "broadcast::take_txn",
        // PR-9 sans-IO segment framing: the wire-fed feed path.
        "broadcast::from_byte",
        "broadcast::take_u32_field",
        "broadcast::take_u32_width",
        "broadcast::take_opt_txn",
        "broadcast::pop",
        // PR-8 word-parallel report membership + batched cohort screens.
        "broadcast::intersects",
        "broadcast::intersects_words",
        "broadcast::any_stale_set",
        "broadcast::any_invalidated_set",
        "broadcast::matches_in_set",
        "core::word_blocks",
        "core::is_disjoint_from",
        "core::is_disjoint_from_augmented",
        // PR-10 monitor feed: every simulation event funnels through here.
        "obs::on_event",
    ];
    for name in REQUIRED {
        assert!(
            report.hot_functions.iter().any(|h| h == name),
            "`{name}` must carry the hot_path contract; current set: {:?}",
            report.hot_functions
        );
    }
}

/// The sans-IO surface covers the protocol core — the ROADMAP item-1
/// boundary: codec, control information, protocol vocabulary, readsets.
#[test]
fn sans_io_surface_covers_the_protocol_core() {
    let report = lint_workspace_report(&real_root()).expect("workspace lints");
    for file in [
        "crates/broadcast/src/control.rs",
        "crates/broadcast/src/feed.rs",
        "crates/broadcast/src/wire.rs",
        "crates/core/src/protocol.rs",
        "crates/core/src/readset.rs",
        "crates/obs/src/monitor.rs",
    ] {
        assert!(
            report.sans_io_files.iter().any(|f| f == file),
            "`{file}` must declare sans_io; current surface: {:?}",
            report.sans_io_files
        );
    }
}

/// The protocol-enum surface covers the wire vocabulary the L13
/// exhaustiveness contract protects — removing a `protocol_enum` marker
/// from any of these fails this test.
#[test]
fn protocol_enum_surface_covers_the_wire_vocabulary() {
    let report = lint_workspace_report(&real_root()).expect("workspace lints");
    for name in [
        "AbortReason",
        "CacheMode",
        "DecodedSegment",
        "Granularity",
        "Method",
        "MonitorKind",
        "MonitorPolicy",
        "CoverageRule",
        "ProtocolStep",
        "ReadDirective",
        "ReadOutcome",
        "ReadStep",
        "SegmentKind",
        "Source",
    ] {
        assert!(
            report.protocol_enums.iter().any(|e| e == name),
            "`{name}` must carry the protocol_enum contract; current set: {:?}",
            report.protocol_enums
        );
    }
}

/// The decode-path surface covers the wire codec — the file whose every
/// byte read must go through the checked `take_*` accessors.
#[test]
fn decode_path_surface_covers_the_wire_codec() {
    let report = lint_workspace_report(&real_root()).expect("workspace lints");
    for file in [
        "crates/broadcast/src/wire.rs",
        "crates/broadcast/src/feed.rs",
    ] {
        assert!(
            report.decode_files.iter().any(|f| f == file),
            "`{file}` must declare decode_path; current surface: {:?}",
            report.decode_files
        );
    }
}

/// The escape hatch is a budget, not a loophole: per-rule allow counts
/// in the real workspace must stay under a pinned ceiling. Raising a
/// ceiling is a reviewed decision, not a drive-by.
#[test]
fn suppression_budget_stays_within_ceiling() {
    let report = lint_workspace_report(&real_root()).expect("workspace lints");
    let ceiling = |rule: Rule| -> usize {
        match rule {
            // currently 38: PR-9 added the wire-fed divergence detectors
            // (`WireFed::roundtrip`, `WireClient` framing — a decode
            // failure there IS the bug the decorator exists to surface)
            // and two bench-fixture expects on self-encoded bytes.
            Rule::Panic => 40,
            Rule::Casts => 3, // currently 2 (u32 length field in segment framing)
            Rule::HotAlloc => 6, // currently 4 (amortized growth sites)
            Rule::LockOrder => 2, // currently 1 (name-resolution over-approximation)
            // currently 26: structurally-bounded hot-path indexing (CSR
            // arena slots, galloping-probe brackets) and nonzero-by-
            // construction divisors — each carries its invariant inline.
            // PR-10 made the monitor feed an L12 entry surface, which
            // newly reaches the sgraph intern/add_edge CSR slots (+5,
            // interned-id-is-dense invariants).
            Rule::PanicReach => 27,
            _ => 0,
        }
    };
    let mut total = 0;
    for (rule, count) in &report.suppressions {
        total += count;
        assert!(
            *count <= ceiling(*rule),
            "{} has {} allows, over its ceiling of {}",
            rule.code(),
            count,
            ceiling(*rule)
        );
    }
    assert!(total <= 73, "workspace-wide allow budget exceeded: {total}");
}
