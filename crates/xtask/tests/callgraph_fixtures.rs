//! Proves the interprocedural rules (L8–L11) against a fixture workspace
//! with one passing and one violating case per rule, then self-checks the
//! real workspace's contract surfaces: the hot-path set must cover the
//! PR-3 hot functions, the sans-IO surface must cover the protocol core,
//! and the escape-hatch budget must stay within its pinned ceiling.

use std::path::{Path, PathBuf};

use xtask::{lint_workspace, lint_workspace_report, Rule};

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
        .join("callgraph")
}

fn real_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("xtask lives at <root>/crates/xtask")
        .to_path_buf()
}

/// Every seeded interprocedural violation is reported with its exact
/// rule, file, and line — and the passing twins stay silent.
#[test]
fn fixtures_yield_exact_interprocedural_diagnostics() {
    let diags = lint_workspace(&fixture_root()).expect("fixture tree lints");
    let got: Vec<(&str, String, usize)> = diags
        .iter()
        .map(|d| (d.rule.code(), d.file.display().to_string(), d.line))
        .collect();

    let want: Vec<(&str, String, usize)> = [
        // core: the renamed `Instant` import (alias leg) …
        ("L11/taint", "crates/core/src/lib.rs", 6),
        // … and the clock reached through the helper crate (cross-crate leg).
        ("L11/taint", "crates/core/src/lib.rs", 14),
        // hotpath: `feed` allocates one hop away; `probe` is clean.
        ("L8/hot-alloc", "crates/hotpath/src/lib.rs", 15),
        // lockorder: the alpha→beta edge (via the call under the guard)
        // that closes the cycle against backward's beta→alpha.
        ("L10/lock-order", "crates/lockorder/src/lib.rs", 26),
        // sansio: `decode` reaches a clock; `width` is pure.
        ("L9/sans-io", "crates/sansio/src/lib.rs", 14),
    ]
    .into_iter()
    .map(|(r, f, l)| (r, f.to_string(), l))
    .collect();

    assert_eq!(
        got,
        want,
        "diagnostics mismatch; full output:\n{}",
        diags
            .iter()
            .map(|d| format!("  {d}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// The seeded determinism mutant (`use std::time::Instant as Stamp;`
/// plus a helper-indirected clock read) evades L2's text match but is
/// caught twice by L11's token-level taint.
#[test]
fn taint_mutant_passes_l2_but_is_caught_by_l11() {
    let diags = lint_workspace(&fixture_root()).expect("fixture tree lints");
    let core_diags: Vec<_> = diags
        .iter()
        .filter(|d| d.file.starts_with("crates/core"))
        .collect();
    assert!(
        core_diags.iter().all(|d| d.rule == Rule::Taint),
        "the mutant must evade every rule except L11: {core_diags:?}"
    );
    assert_eq!(core_diags.len(), 2, "both taint legs must fire");
    assert!(
        !core_diags.iter().any(|d| d.rule == Rule::Determinism),
        "L2's text match must NOT see the renamed import"
    );
}

/// Diagnostics carry the resolved call chain and the needle's exact
/// location, so a violation two crates away is still actionable.
#[test]
fn diagnostic_messages_name_the_chain_and_needle() {
    let diags = lint_workspace(&fixture_root()).expect("fixture tree lints");
    let msg = |rule: Rule| {
        diags
            .iter()
            .find(|d| d.rule == rule)
            .map(|d| d.message.clone())
            .unwrap_or_default()
    };
    let hot = msg(Rule::HotAlloc);
    assert!(hot.contains("`feed`"), "{hot}");
    assert!(hot.contains("crates/util/src/lib.rs:12"), "{hot}");
    assert!(hot.contains("feed → grow"), "{hot}");

    let sans = msg(Rule::SansIo);
    assert!(sans.contains("`decode`"), "{sans}");
    assert!(sans.contains("`Instant::now`"), "{sans}");
    assert!(sans.contains("decode → stamp_micros"), "{sans}");

    let lock = msg(Rule::LockOrder);
    assert!(
        lock.contains("lockorder/alpha → lockorder/beta → lockorder/alpha"),
        "{lock}"
    );

    let taint = msg(Rule::Taint);
    assert!(taint.contains("`Stamp`"), "{taint}");
    assert!(taint.contains("std::time::Instant"), "{taint}");
}

/// The workspace hot-path set provably covers the PR-3 hot functions:
/// removing a `hot_path` marker from any of these (e.g. from
/// `SerializationGraph::path_exists`) fails this test.
#[test]
fn hot_path_set_covers_the_pr3_hot_functions() {
    let report = lint_workspace_report(&real_root()).expect("workspace lints");
    const REQUIRED: &[&str] = &[
        // PR-3 SGT hot path (allocation-freedom contract).
        "sgraph::path_exists",
        "sgraph::would_close_cycle",
        "sgraph::remove_query",
        // Per-cycle report probes.
        "broadcast::any_stale",
        "broadcast::any_invalidated",
        "broadcast::matches_in",
        "broadcast::any_entry_matching",
        "broadcast::gallop_to",
        "broadcast::lookup",
        // Broadcast feed decode path.
        "broadcast::take",
        "broadcast::take_u32",
        "broadcast::take_txn",
    ];
    for name in REQUIRED {
        assert!(
            report.hot_functions.iter().any(|h| h == name),
            "`{name}` must carry the hot_path contract; current set: {:?}",
            report.hot_functions
        );
    }
}

/// The sans-IO surface covers the protocol core — the ROADMAP item-1
/// boundary: codec, control information, protocol vocabulary, readsets.
#[test]
fn sans_io_surface_covers_the_protocol_core() {
    let report = lint_workspace_report(&real_root()).expect("workspace lints");
    for file in [
        "crates/broadcast/src/control.rs",
        "crates/broadcast/src/wire.rs",
        "crates/core/src/protocol.rs",
        "crates/core/src/readset.rs",
    ] {
        assert!(
            report.sans_io_files.iter().any(|f| f == file),
            "`{file}` must declare sans_io; current surface: {:?}",
            report.sans_io_files
        );
    }
}

/// The escape hatch is a budget, not a loophole: per-rule allow counts
/// in the real workspace must stay under a pinned ceiling. Raising a
/// ceiling is a reviewed decision, not a drive-by.
#[test]
fn suppression_budget_stays_within_ceiling() {
    let report = lint_workspace_report(&real_root()).expect("workspace lints");
    let ceiling = |rule: Rule| -> usize {
        match rule {
            Rule::Panic => 32,    // currently 29
            Rule::Casts => 3,     // currently 1
            Rule::HotAlloc => 6,  // currently 4 (amortized growth sites)
            Rule::LockOrder => 2, // currently 1 (name-resolution over-approximation)
            _ => 0,
        }
    };
    let mut total = 0;
    for (rule, count) in &report.suppressions {
        total += count;
        assert!(
            *count <= ceiling(*rule),
            "{} has {} allows, over its ceiling of {}",
            rule.code(),
            count,
            ceiling(*rule)
        );
    }
    assert!(total <= 40, "workspace-wide allow budget exceeded: {total}");
}
