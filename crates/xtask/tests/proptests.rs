//! Property tests for the lint front end: the splitter, lexer, and
//! per-function fact extractor must complete — no panic, no hang — on
//! arbitrary input text. The dataflow rules (L12–L15) run over whatever
//! these layers produce, so total robustness here is what lets the lint
//! run unattended over every file in CI.

// Integration tests are exempt from the panic-freedom policy
// (mirrors `allow-unwrap-in-tests` in clippy.toml and the `#[cfg(test)]`
// carve-out in `cargo xtask lint`).
#![allow(clippy::unwrap_used)]

use std::path::Path;

use proptest::prelude::*;
use xtask::items::index_file;
use xtask::lex::{lex_tokens, split_source, test_mask};

/// Runs the full front end over `text` and returns the number of
/// indexed functions (forcing the whole FileIndex to be built).
fn index_text(text: &str) -> usize {
    let lines = split_source(text);
    let mask = test_mask(&lines);
    let tokens = lex_tokens(&lines);
    let index = index_file(
        "fuzz",
        Path::new("crates/fuzz/src/lib.rs"),
        &lines,
        &mask,
        &tokens,
        &[],
    );
    index.fns.len()
}

/// Rust-shaped fragments: unbalanced brackets, dangling `match` heads,
/// orphan `=>` arms, half-written enums — chosen to stress the
/// bracket-depth and arm parsers far harder than uniform bytes.
const SOUP: &[&str] = &[
    "fn",
    "match",
    "enum",
    "impl",
    "{",
    "}",
    "(",
    ")",
    "[",
    "]",
    "=>",
    "::",
    ",",
    ";",
    "_",
    "|",
    "+",
    "-",
    "*",
    "/",
    "%",
    "x",
    "Cycle",
    "self",
    "0",
    "1",
    ".",
    "number",
    "f64",
    "unreachable",
    "!",
    "if",
    "let",
    "pub",
    "#",
    "\n",
    "\"s\"",
    "// bpush-lint: protocol_enum — soup",
    "// bpush-lint: decode_path",
    "#[cfg(test)]",
];

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 256,
        ..ProptestConfig::default()
    })]

    /// Arbitrary byte salad (decoded lossily): the extractor completes
    /// on text that is nothing like Rust.
    #[test]
    fn fact_extraction_never_panics_on_arbitrary_text(
        bytes in proptest::collection::vec(0u32..256, 0..400),
    ) {
        let raw: Vec<u8> = bytes.iter().map(|&b| b as u8).collect();
        let text = String::from_utf8_lossy(&raw);
        let _ = index_text(&text);
    }

    /// Rust-shaped token soup: every stream of fragments indexes
    /// without panicking, however malformed the nesting.
    #[test]
    fn fact_extraction_never_panics_on_token_soup(
        picks in proptest::collection::vec(0usize..SOUP.len(), 0..200),
    ) {
        let text = picks
            .iter()
            .map(|&i| SOUP[i])
            .collect::<Vec<_>>()
            .join(" ");
        let _ = index_text(&text);
    }

    /// The extractor is a pure function of the text: two runs over the
    /// same input produce the same function count (the order-stability
    /// contract the parallel per-file pass relies on).
    #[test]
    fn fact_extraction_is_deterministic(
        picks in proptest::collection::vec(0usize..SOUP.len(), 0..200),
    ) {
        let text = picks
            .iter()
            .map(|&i| SOUP[i])
            .collect::<Vec<_>>()
            .join(" ");
        prop_assert_eq!(index_text(&text), index_text(&text));
    }
}
