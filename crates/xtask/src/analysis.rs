//! Drivers for the interprocedural rules: L8/hot-alloc, L9/sans-io,
//! L10/lock-order, L11/taint, and the dataflow layer L12/panic-reach,
//! L13/state-total, L14/decode-bounds, L15/overflow. Each consumes the
//! per-file indexes from [`crate::items`] through the resolved
//! [`crate::callgraph`] and emits ordinary [`Diagnostic`]s; [`Analysis`]
//! carries the summary facts the self-tests pin (hot-function coverage,
//! sans-IO surface, protocol-enum set, decode surface).

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::callgraph::{CallGraph, DepMap};
use crate::items::{EnumDef, FileIndex};
use crate::{Diagnostic, Rule, DETERMINISTIC_CRATES};

/// Path last-segments whose import is a determinism-taint source (L11).
const TAINT_SOURCES: &[&str] = &["Instant", "SystemTime", "HashMap", "HashSet", "thread_rng"];

/// Summary facts from the interprocedural pass.
#[derive(Debug, Clone, Default)]
pub struct Analysis {
    /// Every `crate::fn` carrying the `hot_path` annotation, sorted.
    pub hot_functions: Vec<String>,
    /// Every file declaring `sans_io`, as workspace-relative paths, sorted.
    pub sans_io_files: Vec<String>,
    /// Every enum carrying the `protocol_enum` annotation, sorted by name.
    pub protocol_enums: Vec<String>,
    /// Every file declaring `decode_path`, as workspace-relative paths, sorted.
    pub decode_files: Vec<String>,
}

/// Runs L8–L15 over the indexed files, appending findings to `diags`.
#[must_use]
pub fn run(files: &[FileIndex], deps: &DepMap, diags: &mut Vec<Diagnostic>) -> Analysis {
    let graph = CallGraph::build(files, deps);
    let mut analysis = Analysis::default();

    let mut hot = BTreeSet::new();
    let mut sans = BTreeSet::new();
    for id in graph.ids() {
        let (file, f) = graph.fn_at(id);
        if f.is_test {
            continue;
        }
        if f.hot {
            hot.insert(format!("{}::{}", file.crate_name, f.name));
            check_purity(&graph, id, Rule::HotAlloc, diags);
        }
        if file.sans_io {
            sans.insert(file.rel.display().to_string());
            check_purity(&graph, id, Rule::SansIo, diags);
        }
        // L12: the same entry points own the panic-freedom contract.
        if f.hot || file.sans_io {
            check_panic_reach(&graph, id, diags);
        }
    }
    analysis.hot_functions = hot.into_iter().collect();
    analysis.sans_io_files = files
        .iter()
        .filter(|f| f.sans_io)
        .map(|f| f.rel.display().to_string())
        .collect::<BTreeSet<_>>()
        .into_iter()
        .collect();

    check_lock_order(&graph, diags);
    check_taint(&graph, files, diags);
    check_state_total(files, diags, &mut analysis);
    check_decode_bounds(&graph, files, diags, &mut analysis);
    check_overflow(files, diags);
    analysis
}

/// L8 / L9 share one shape: no function reachable from `start` may carry
/// the rule's needle set.
fn check_purity(graph: &CallGraph<'_>, start: usize, rule: Rule, diags: &mut Vec<Diagnostic>) {
    let (file, f) = graph.fn_at(start);
    let (reached, parent) = graph.reachable(start);
    for id in reached {
        let (nfile, nf) = graph.fn_at(id);
        let needles = match rule {
            Rule::HotAlloc => &nf.allocs,
            _ => &nf.ios,
        };
        for n in needles {
            let via = if id == start {
                String::new()
            } else {
                format!(" via {}", graph.chain(start, id, &parent))
            };
            let (what, fix) = match rule {
                Rule::HotAlloc => (
                    "hot_path",
                    "keep the hot path allocation-free or annotate the site with a reason",
                ),
                _ => (
                    "sans_io",
                    "keep the protocol core free of clocks, threads, channels, files, and sockets",
                ),
            };
            diags.push(Diagnostic {
                rule,
                file: file.rel.clone(),
                line: f.line,
                message: format!(
                    "{what} fn `{}` reaches `{}` at {}:{}{via}; {fix}",
                    f.name,
                    n.what,
                    nfile.rel.display(),
                    n.line,
                ),
            });
        }
    }
}

/// L10: build the lock-acquisition order graph (intra-function ordering
/// plus locks reachable through calls made while a guard is held) and
/// reject cycles.
fn check_lock_order(graph: &CallGraph<'_>, diags: &mut Vec<Diagnostic>) {
    // Locks transitively acquired by each function (memoized per id).
    let mut reach_locks: Vec<Option<BTreeSet<String>>> = vec![None; graph.len()];
    let mut locks_of = |graph: &CallGraph<'_>, id: usize| -> BTreeSet<String> {
        if let Some(cached) = &reach_locks[id] {
            return cached.clone();
        }
        let (reached, _) = graph.reachable(id);
        let mut set = BTreeSet::new();
        for rid in reached {
            let (rfile, rf) = graph.fn_at(rid);
            for l in &rf.locks {
                set.insert(format!("{}/{}", rfile.crate_name, l.recv));
            }
        }
        reach_locks[id] = Some(set.clone());
        set
    };

    // Edges as (from, to, file, line), deterministic order.
    let mut edges: Vec<(String, String, std::path::PathBuf, usize)> = Vec::new();
    for id in graph.ids() {
        let (file, f) = graph.fn_at(id);
        if f.is_test {
            continue;
        }
        let key = |recv: &str| format!("{}/{}", file.crate_name, recv);
        for (i, a) in f.locks.iter().enumerate() {
            // Later acquisitions in the same body nest under `a`.
            for b in f.locks.iter().skip(i + 1) {
                edges.push((key(&a.recv), key(&b.recv), file.rel.clone(), b.line));
            }
            // Calls made after `a` is taken pull in the callee's locks.
            for call in f.calls.iter().filter(|c| c.pos > a.pos) {
                let callees: Vec<usize> = graph
                    .callees(id)
                    .iter()
                    .copied()
                    .filter(|&cid| graph.fn_at(cid).1.name == call.name)
                    .collect();
                for cid in callees {
                    for held in locks_of(graph, cid) {
                        edges.push((key(&a.recv), held, file.rel.clone(), call.line));
                    }
                }
            }
        }
    }
    edges.sort();
    edges.dedup_by(|a, b| a.0 == b.0 && a.1 == b.1);

    // Adjacency for cycle queries.
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for (from, to, _, _) in &edges {
        adj.entry(from).or_default().insert(to);
    }
    let path_to = |from: &str, to: &str| -> Option<Vec<String>> {
        let mut parent: BTreeMap<&str, &str> = BTreeMap::new();
        let mut queue = VecDeque::new();
        queue.push_back(from);
        while let Some(cur) = queue.pop_front() {
            if cur == to {
                let mut path = vec![cur.to_string()];
                let mut walk = cur;
                while let Some(&p) = parent.get(walk) {
                    path.push(p.to_string());
                    walk = p;
                }
                path.reverse();
                return Some(path);
            }
            for &next in adj.get(cur).into_iter().flatten() {
                if next != from && !parent.contains_key(next) {
                    parent.insert(next, cur);
                    queue.push_back(next);
                }
            }
        }
        // `from == to` with a self-edge:
        if from == to && adj.get(from).is_some_and(|s| s.contains(to)) {
            return Some(vec![from.to_string()]);
        }
        None
    };

    for (from, to, file, line) in &edges {
        let back = if from == to {
            Some(vec![to.clone()])
        } else {
            path_to(to, from)
        };
        let Some(back) = back else { continue };
        // Report each cycle once: at the edge leaving its smallest node.
        let min_on_cycle = back.iter().chain(std::iter::once(from)).min();
        if min_on_cycle != Some(from) {
            continue;
        }
        let cycle: Vec<&str> = std::iter::once(from.as_str())
            .chain(back.iter().map(String::as_str))
            .collect();
        diags.push(Diagnostic {
            rule: Rule::LockOrder,
            file: file.clone(),
            line: *line,
            message: if from == to {
                format!("lock `{from}` re-acquired while already held (self-deadlock)")
            } else {
                format!(
                    "lock-order cycle: {}; acquire locks in one global order",
                    cycle.join(" → ")
                )
            },
        });
    }
}

/// L11: token-level taint. Two legs — renamed imports of
/// non-deterministic types inside deterministic crates (the indirection
/// L2's text match cannot see), and deterministic-crate functions that
/// transitively reach a needle-bearing function in a crate *outside*
/// the deterministic set (where L2 never looks).
fn check_taint(graph: &CallGraph<'_>, files: &[FileIndex], diags: &mut Vec<Diagnostic>) {
    for file in files {
        if !DETERMINISTIC_CRATES.contains(&file.crate_name.as_str()) {
            continue;
        }
        for alias in &file.aliases {
            let last = alias.target.rsplit("::").next().unwrap_or(&alias.target);
            if alias.renamed && TAINT_SOURCES.contains(&last) {
                diags.push(Diagnostic {
                    rule: Rule::Taint,
                    file: file.rel.clone(),
                    line: alias.line,
                    message: format!(
                        "`{}` aliases non-deterministic `{}` in deterministic crate `{}`; \
                         renaming does not launder the taint — use seeded rand, logical \
                         clocks, and BTree collections",
                        alias.binding, alias.target, file.crate_name
                    ),
                });
            }
        }
    }

    for id in graph.ids() {
        let (file, f) = graph.fn_at(id);
        if f.is_test || !DETERMINISTIC_CRATES.contains(&file.crate_name.as_str()) {
            continue;
        }
        let (reached, parent) = graph.reachable(id);
        for rid in reached {
            if rid == id {
                continue;
            }
            let (rfile, rf) = graph.fn_at(rid);
            if DETERMINISTIC_CRATES.contains(&rfile.crate_name.as_str()) {
                continue; // L2 already polices needles inside the set
            }
            if let Some(n) = rf.dets.first() {
                diags.push(Diagnostic {
                    rule: Rule::Taint,
                    file: file.rel.clone(),
                    line: f.line,
                    message: format!(
                        "deterministic fn `{}` reaches non-deterministic `{}` at {}:{} \
                         via {}; hoist the construct behind a deterministic API or \
                         annotate with a reason",
                        f.name,
                        n.what,
                        rfile.rel.display(),
                        n.line,
                        graph.chain(id, rid, &parent),
                    ),
                });
            }
        }
    }
}

/// L12: nothing reachable from a `hot_path`/`sans_io` entry point may
/// hit an implicit panic site — a raw index/slice, a division with a
/// non-constant divisor, or `unreachable!`. These are exactly the sites
/// L1's text needles miss (no `unwrap`/`panic!` token), and a helper
/// crate two hops away is still on the hook.
fn check_panic_reach(graph: &CallGraph<'_>, start: usize, diags: &mut Vec<Diagnostic>) {
    let (file, f) = graph.fn_at(start);
    let (reached, parent) = graph.reachable(start);
    for id in reached {
        let (nfile, nf) = graph.fn_at(id);
        let sites = nf.panics.iter().map(|n| (n.what.as_str(), n.line)).chain(
            nf.indexes
                .iter()
                .filter(|s| !s.allowed_panic)
                .map(|s| (s.what.as_str(), s.line)),
        );
        for (what, line) in sites {
            let via = if id == start {
                String::new()
            } else {
                format!(" via {}", graph.chain(start, id, &parent))
            };
            diags.push(Diagnostic {
                rule: Rule::PanicReach,
                file: file.rel.clone(),
                line: f.line,
                message: format!(
                    "protocol entry fn `{}` reaches implicit panic site {} at {}:{}{via}; \
                     use checked accessors/arithmetic or annotate the site with a reason",
                    f.name,
                    what,
                    nfile.rel.display(),
                    line,
                ),
            });
        }
    }
}

/// L13: a match that names a `protocol_enum`-marked variant must name
/// every variant — a wildcard `_` or catch-all binding arm silences the
/// compiler's exhaustiveness check for the next segment kind added.
fn check_state_total(files: &[FileIndex], diags: &mut Vec<Diagnostic>, analysis: &mut Analysis) {
    let mut enums: BTreeMap<&str, &EnumDef> = BTreeMap::new();
    for file in files {
        for e in &file.enums {
            if e.protocol {
                enums.entry(e.name.as_str()).or_insert(e);
            }
        }
    }
    analysis.protocol_enums = enums.keys().map(|s| (*s).to_string()).collect();

    for file in files {
        for m in &file.matches {
            if m.is_test {
                continue;
            }
            // Which marked enums this match is over, and the variants
            // its arms name — `Enum::Variant` references in patterns.
            let mut named: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
            for arm in &m.arms {
                for w in arm.pat.windows(3) {
                    if w[1] != "::" {
                        continue;
                    }
                    if let Some(e) = enums.get(w[0].as_str()) {
                        if e.variants.iter().any(|v| *v == w[2]) {
                            named
                                .entry(e.name.as_str())
                                .or_default()
                                .insert(w[2].as_str());
                        }
                    }
                }
            }
            if named.is_empty() {
                continue;
            }
            let Some(arm) = m.arms.iter().find(|a| !a.allowed && is_catch_all(&a.pat)) else {
                continue;
            };
            for (ename, seen) in &named {
                let e = enums[ename];
                let hidden: Vec<&str> = e
                    .variants
                    .iter()
                    .map(String::as_str)
                    .filter(|v| !seen.contains(*v))
                    .collect();
                let hides = if hidden.is_empty() {
                    "every future variant".to_string()
                } else {
                    format!("`{}`", hidden.join("`, `"))
                };
                diags.push(Diagnostic {
                    rule: Rule::StateTotal,
                    file: file.rel.clone(),
                    line: arm.line,
                    message: format!(
                        "catch-all arm `{}` over protocol enum `{ename}` hides {hides}; \
                         name every variant so a new kind is a lint error at every handler",
                        arm.pat.first().map(String::as_str).unwrap_or("_"),
                    ),
                });
            }
        }
    }
}

/// Whether a match arm pattern swallows the rest of the value space: a
/// wildcard `_` or a lowercase catch-all binding, with or without a
/// guard (a guarded catch-all is still non-total).
fn is_catch_all(pat: &[String]) -> bool {
    let Some(first) = pat.first() else {
        return false;
    };
    if !(pat.len() == 1 || pat.get(1).is_some_and(|t| t == "if")) {
        return false;
    }
    if first == "_" {
        return true;
    }
    first.chars().next().is_some_and(|c| c.is_ascii_lowercase())
        && first.chars().all(|c| c.is_alphanumeric() || c == '_')
        && !crate::items::CALL_KEYWORDS.contains(&first.as_str())
        && first != "true"
        && first != "false"
}

/// L14: a `decode_path` file may only touch input bytes through the
/// checked `take_*` accessors — every raw index/slice site is a
/// finding, enriched with the call chain from a `decode_*` entry when
/// one reaches it.
fn check_decode_bounds(
    graph: &CallGraph<'_>,
    files: &[FileIndex],
    diags: &mut Vec<Diagnostic>,
    analysis: &mut Analysis,
) {
    analysis.decode_files = files
        .iter()
        .filter(|f| f.decode_path)
        .map(|f| f.rel.display().to_string())
        .collect::<BTreeSet<_>>()
        .into_iter()
        .collect();

    let decode_entries: Vec<usize> = graph
        .ids()
        .filter(|&id| {
            let (file, f) = graph.fn_at(id);
            file.decode_path && !f.is_test && f.name.starts_with("decode")
        })
        .collect();

    for id in graph.ids() {
        let (file, f) = graph.fn_at(id);
        if !file.decode_path || f.is_test {
            continue;
        }
        for s in &f.indexes {
            if s.allowed_decode {
                continue;
            }
            let from = decode_entries
                .iter()
                .find_map(|&eid| {
                    if eid == id {
                        return None;
                    }
                    let (reached, parent) = graph.reachable(eid);
                    if reached.binary_search(&id).is_ok() {
                        Some(format!(
                            " (reached from decode entry via {})",
                            graph.chain(eid, id, &parent)
                        ))
                    } else {
                        None
                    }
                })
                .unwrap_or_default();
            diags.push(Diagnostic {
                rule: Rule::DecodeBounds,
                file: file.rel.clone(),
                line: s.line,
                message: format!(
                    "raw byte access {} in decode-path fn `{}`{from}; read input only \
                     through the checked `take_*` accessors",
                    s.what, f.name,
                ),
            });
        }
    }
}

/// L15: every unchecked `+`/`-`/`*` where an operand is tick-sourced
/// (an extracted fact from [`crate::items`]) is a finding — tick
/// counters grow monotonically for the life of the broadcast, so plain
/// arithmetic is a silent-wraparound hazard.
fn check_overflow(files: &[FileIndex], diags: &mut Vec<Diagnostic>) {
    for file in files {
        for f in &file.fns {
            if f.is_test {
                continue;
            }
            for n in &f.ticks {
                diags.push(Diagnostic {
                    rule: Rule::Overflow,
                    file: file.rel.clone(),
                    line: n.line,
                    message: format!(
                        "{} in fn `{}`; use checked/saturating/wrapping arithmetic or \
                         annotate with a reason",
                        n.what, f.name,
                    ),
                });
            }
        }
    }
}
