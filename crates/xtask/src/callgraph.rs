//! Workspace call-graph builder and reachability queries for the
//! interprocedural rules (L8/hot-alloc, L9/sans-io, L10/lock-order,
//! L11/taint-determinism).
//!
//! Resolution is by function name, scoped to the calling crate plus its
//! transitive workspace dependencies (parsed from each crate's
//! `Cargo.toml`), with two precision refinements:
//!
//! * `Type::name(…)` calls only bind to functions in an `impl Type`
//!   block (a capitalized qualifier that matches nothing binds to
//!   nothing — it names a std or external type);
//! * `self.name(…)` calls prefer functions sharing the caller's impl
//!   type, which keeps same-named methods of sibling implementations
//!   (e.g. an interned graph and its baseline twin) apart.
//!
//! Everything else is an over-approximation: an unresolvable method
//! call on an unknown receiver binds to every same-named candidate in
//! scope. That direction of error makes L8/L9 conservative (they can
//! demand an annotation, never miss through a resolved edge).

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::items::{CallSite, FileIndex, FnItem};
use crate::{read_file, LintError};

/// Transitive workspace-dependency map: crate directory name → the set
/// of crate directory names its sources may call into (itself included).
#[derive(Debug, Default)]
pub struct DepMap {
    deps: BTreeMap<String, BTreeSet<String>>,
}

impl DepMap {
    /// Parses each listed crate's `Cargo.toml` and closes the
    /// dependency relation transitively.
    ///
    /// # Errors
    /// Propagates manifest read failures.
    pub fn load(crates: &[(String, std::path::PathBuf)]) -> Result<DepMap, LintError> {
        // Package name → directory name, so `bpush-sgraph = { … }`
        // resolves to the `sgraph` directory.
        let mut pkg_to_dir: BTreeMap<String, String> = BTreeMap::new();
        let mut manifests: Vec<(String, String)> = Vec::new();
        for (dir, path) in crates {
            let text = read_file(&path.join("Cargo.toml"))?;
            if let Some(pkg) = package_name(&text) {
                pkg_to_dir.insert(pkg, dir.clone());
            }
            pkg_to_dir.insert(dir.clone(), dir.clone());
            manifests.push((dir.clone(), text));
        }
        let mut direct: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        for (dir, text) in &manifests {
            let mut set = BTreeSet::new();
            set.insert(dir.clone());
            for dep in dependency_names(text) {
                if let Some(d) = pkg_to_dir.get(&dep) {
                    set.insert(d.clone());
                }
            }
            direct.insert(dir.clone(), set);
        }
        // Transitive closure (the workspace graph is tiny).
        let mut changed = true;
        while changed {
            changed = false;
            let snapshot = direct.clone();
            for set in direct.values_mut() {
                let mut add = BTreeSet::new();
                for dep in set.iter() {
                    if let Some(transitive) = snapshot.get(dep) {
                        for t in transitive {
                            if !set.contains(t) {
                                add.insert(t.clone());
                            }
                        }
                    }
                }
                if !add.is_empty() {
                    set.extend(add);
                    changed = true;
                }
            }
        }
        Ok(DepMap { deps: direct })
    }

    /// Whether sources in `from` may call into `to`.
    #[must_use]
    pub fn reaches(&self, from: &str, to: &str) -> bool {
        from == to || self.deps.get(from).is_some_and(|s| s.contains(to))
    }
}

/// Extracts `name = "…"` from the `[package]` section.
fn package_name(manifest: &str) -> Option<String> {
    let mut in_package = false;
    for line in manifest.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            in_package = line == "[package]";
            continue;
        }
        if in_package {
            if let Some(rest) = line.strip_prefix("name") {
                let rest = rest.trim_start().strip_prefix('=')?.trim();
                return Some(rest.trim_matches('"').to_string());
            }
        }
    }
    None
}

/// Dependency package names from `[dependencies]` (and
/// `[dev-dependencies]`, so test-only crates still scope), honoring
/// `package = "…"` renames.
fn dependency_names(manifest: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut in_deps = false;
    for line in manifest.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            in_deps = matches!(line, "[dependencies]" | "[dev-dependencies]");
            continue;
        }
        if !in_deps || line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            continue;
        };
        let mut name = key.trim().trim_matches('"').to_string();
        if let Some(pos) = value.find("package") {
            let rest = &value[pos + "package".len()..];
            if let Some(eq) = rest.find('=') {
                let quoted = rest[eq + 1..].trim();
                if let Some(stripped) = quoted.strip_prefix('"') {
                    if let Some(end) = stripped.find('"') {
                        name = stripped[..end].to_string();
                    }
                }
            }
        }
        out.push(name);
    }
    out
}

/// A flattened reference to one indexed function.
#[derive(Debug, Clone, Copy)]
pub struct FnId(pub usize);

/// The workspace call graph over every indexed function.
pub struct CallGraph<'a> {
    files: &'a [FileIndex],
    /// Flattened `(file index, fn index)` per global id.
    flat: Vec<(usize, usize)>,
    by_name: BTreeMap<&'a str, Vec<usize>>,
    /// Resolved adjacency: global id → callee global ids (sorted).
    edges: Vec<Vec<usize>>,
}

impl<'a> CallGraph<'a> {
    /// Builds the graph: flattens the files, then resolves every call
    /// site under `deps` scoping.
    #[must_use]
    pub fn build(files: &'a [FileIndex], deps: &DepMap) -> CallGraph<'a> {
        let mut flat = Vec::new();
        let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (fi, file) in files.iter().enumerate() {
            for (gi, f) in file.fns.iter().enumerate() {
                let id = flat.len();
                flat.push((fi, gi));
                by_name.entry(f.name.as_str()).or_default().push(id);
            }
        }
        let mut graph = CallGraph {
            files,
            flat,
            by_name,
            edges: Vec::new(),
        };
        let mut edges = Vec::with_capacity(graph.flat.len());
        for id in 0..graph.flat.len() {
            let mut out = BTreeSet::new();
            let (file, f) = graph.fn_at(id);
            for call in &f.calls {
                for callee in graph.resolve(file, f, call, deps) {
                    if callee != id {
                        out.insert(callee);
                    }
                }
            }
            edges.push(out.into_iter().collect());
        }
        graph.edges = edges;
        graph
    }

    /// The file and function behind a global id.
    #[must_use]
    pub fn fn_at(&self, id: usize) -> (&'a FileIndex, &'a FnItem) {
        let (fi, gi) = self.flat[id];
        (&self.files[fi], &self.files[fi].fns[gi])
    }

    /// Number of functions in the graph.
    #[must_use]
    pub fn len(&self) -> usize {
        self.flat.len()
    }

    /// Whether the graph is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.flat.is_empty()
    }

    /// Global ids of every function, in file order.
    pub fn ids(&self) -> impl Iterator<Item = usize> + '_ {
        0..self.flat.len()
    }

    /// Direct callees of `id`.
    #[must_use]
    pub fn callees(&self, id: usize) -> &[usize] {
        &self.edges[id]
    }

    /// Candidate callees for one call site.
    fn resolve(
        &self,
        file: &FileIndex,
        caller: &FnItem,
        call: &CallSite,
        deps: &DepMap,
    ) -> Vec<usize> {
        let Some(candidates) = self.by_name.get(call.name.as_str()) else {
            return Vec::new();
        };
        let in_scope: Vec<usize> = candidates
            .iter()
            .copied()
            .filter(|&id| {
                let (cf, cfn) = self.fn_at(id);
                !cfn.is_test && deps.reaches(&file.crate_name, &cf.crate_name)
            })
            .collect();
        if let Some(q) = &call.qualifier {
            if q == "Self" {
                return self.prefer_impl(&in_scope, caller.impl_type.as_deref(), true);
            }
            if q.chars().next().is_some_and(char::is_uppercase) {
                // A type-qualified call binds only to that type's impl;
                // no match means a std/external type we cannot see.
                return self.prefer_impl(&in_scope, Some(q.as_str()), true);
            }
            // Module-qualified (`wire::decode(…)`): name scoping only.
            return in_scope;
        }
        if call.receiver.as_deref() == Some("self") {
            return self.prefer_impl(&in_scope, caller.impl_type.as_deref(), false);
        }
        in_scope
    }

    /// Filters `ids` to those in an `impl ty` block. With `require`,
    /// an empty match stays empty; otherwise it falls back to `ids`.
    fn prefer_impl(&self, ids: &[usize], ty: Option<&str>, require: bool) -> Vec<usize> {
        let matched: Vec<usize> = ids
            .iter()
            .copied()
            .filter(|&id| self.fn_at(id).1.impl_type.as_deref() == ty)
            .collect();
        if matched.is_empty() && !require {
            return ids.to_vec();
        }
        matched
    }

    /// Every function reachable from `start` (itself included), with the
    /// BFS parent of each reached node so diagnostics can render the
    /// call chain. Returns `(reached ids sorted, parent map)`.
    #[must_use]
    pub fn reachable(&self, start: usize) -> (Vec<usize>, BTreeMap<usize, usize>) {
        let mut seen = BTreeSet::new();
        let mut parent = BTreeMap::new();
        let mut queue = VecDeque::new();
        seen.insert(start);
        queue.push_back(start);
        while let Some(id) = queue.pop_front() {
            for &next in self.callees(id) {
                if seen.insert(next) {
                    parent.insert(next, id);
                    queue.push_back(next);
                }
            }
        }
        (seen.into_iter().collect(), parent)
    }

    /// Renders the `start → … → end` call chain from a parent map.
    #[must_use]
    pub fn chain(&self, start: usize, end: usize, parent: &BTreeMap<usize, usize>) -> String {
        let mut names = vec![self.fn_at(end).1.name.clone()];
        let mut cur = end;
        while cur != start {
            let Some(&p) = parent.get(&cur) else { break };
            names.push(self.fn_at(p).1.name.clone());
            cur = p;
        }
        names.reverse();
        names.join(" → ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::index_file;
    use crate::lex::{lex_tokens, split_source, test_mask};

    fn index(crate_name: &str, src: &str) -> FileIndex {
        let lines = split_source(src);
        let mask = test_mask(&lines);
        let tokens = lex_tokens(&lines);
        let allows = vec![BTreeSet::new(); lines.len()];
        index_file(
            crate_name,
            std::path::Path::new("crates/x/src/lib.rs"),
            &lines,
            &mask,
            &tokens,
            &allows,
        )
    }

    fn dep_map(pairs: &[(&str, &[&str])]) -> DepMap {
        let mut deps = BTreeMap::new();
        for (from, to) in pairs {
            let mut set: BTreeSet<String> = to.iter().map(|s| s.to_string()).collect();
            set.insert(from.to_string());
            deps.insert(from.to_string(), set);
        }
        DepMap { deps }
    }

    #[test]
    fn manifest_parsing_extracts_names_and_deps() {
        let text = "[package]\nname = \"bpush-demo\"\n\n[dependencies]\nbpush-types = { workspace = true }\nrenamed = { package = \"bpush-extra\", path = \"../extra\" }\n";
        assert_eq!(package_name(text).as_deref(), Some("bpush-demo"));
        assert_eq!(dependency_names(text), vec!["bpush-types", "bpush-extra"]);
    }

    #[test]
    fn self_calls_prefer_the_callers_impl_type() {
        let files = vec![index(
            "g",
            "impl Fast {\n    fn probe(&self) { self.step(); }\n    fn step(&self) {}\n}\nimpl Slow {\n    fn step(&self) { boom(); }\n}\nfn boom() {}\n",
        )];
        let deps = dep_map(&[("g", &[])]);
        let graph = CallGraph::build(&files, &deps);
        // probe (id 0) must link to Fast::step (id 1), not Slow::step (id 2).
        assert_eq!(graph.callees(0), &[1]);
    }

    #[test]
    fn type_qualified_calls_require_a_matching_impl() {
        let files = vec![index(
            "g",
            "impl Known {\n    fn make() {}\n}\nfn a() { Known::make(); }\nfn b() { External::make(); }\n",
        )];
        let deps = dep_map(&[("g", &[])]);
        let graph = CallGraph::build(&files, &deps);
        let a = 1; // fn a
        let b = 2; // fn b
        assert_eq!(graph.callees(a), &[0]);
        assert!(graph.callees(b).is_empty(), "External::make binds nothing");
    }

    #[test]
    fn crate_scoping_limits_candidates() {
        let files = vec![
            index("app", "fn entry() { helper(); }\n"),
            index("lib", "fn helper() {}\n"),
            index("unrelated", "fn helper() { std::thread::sleep(d); }\n"),
        ];
        let deps = dep_map(&[("app", &["lib"]), ("lib", &[]), ("unrelated", &[])]);
        let graph = CallGraph::build(&files, &deps);
        // entry resolves helper only into `lib`, not `unrelated`.
        assert_eq!(graph.callees(0), &[1]);
    }

    #[test]
    fn reachability_and_chain_rendering() {
        let files = vec![index("g", "fn a() { b(); }\nfn b() { c(); }\nfn c() {}\n")];
        let deps = dep_map(&[("g", &[])]);
        let graph = CallGraph::build(&files, &deps);
        let (reached, parent) = graph.reachable(0);
        assert_eq!(reached, vec![0, 1, 2]);
        assert_eq!(graph.chain(0, 2, &parent), "a → b → c");
    }
}
