//! Command-line entry point for the workspace's static-analysis pass and
//! model checker.
//!
//! Usage (via the repo's cargo alias):
//!
//! * `cargo xtask lint [--root <dir>] [--json]` — run the rule catalog;
//!   exits non-zero when any rule fires.
//! * `cargo xtask mc [--scope ci|default] [--protocol <name>] [--json]`
//!   — exhaustively model-check the protocols at a small scope; exits
//!   non-zero when any protocol commits a non-serializable readset.
//! * `cargo xtask bench [--quick] [--json] [--out <path>]` — run the
//!   fixed-seed substrate and per-method benchmarks and write the
//!   `bpush-bench-v1` report (default `BENCH_3.json` at the workspace
//!   root).
//! * `cargo xtask trace [--method <name>] [--quick] [--json]
//!   [--out-dir <dir>]` — run one fixed-seed traced simulation and
//!   write `trace.json` (chrome `trace_event`, Perfetto-loadable),
//!   `trace.ndjson`, and the `bpush-trace-v1` `metrics.json`.
//! * `cargo xtask explain <file> [--json]` — abort forensics: walk a
//!   flight-recorder capture (`bpush-capture-v1`) or a traced run's
//!   `metrics.json` and print the causal chain behind the trigger.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: cargo run -p xtask -- <command>

commands:
  lint [--root <workspace-root>] [--rule <code>] [--changed]
       [--workers <n>] [--budget-ms <n>] [--json]
      Runs the bpush rule catalog (L0/annotation through L15/overflow:
      panic, determinism, crate-attrs, conformance, locks, casts,
      stdout, hot-alloc, sans-io, lock-order, taint, panic-reach,
      state-total, decode-bounds, overflow) over every crate under
      <root>/crates and exits non-zero if any rule fires.
      --rule restricts the findings to one rule (given by code, e.g.
      `L8/hot-alloc`, or by allow-name, e.g. `hot-alloc`); --changed
      restricts the file-scoped rules to files touched per git (the
      interprocedural rules still see the whole graph) for a fast
      pre-commit loop; --workers overrides the thread count of the
      per-file pass (the report is identical for any value);
      --budget-ms fails the run when the single-pass micro-timings
      exceed the given wall-time ceiling; --json prints the full
      report (findings, per-rule suppression counts, timings).
  mc [--scope ci|default] [--protocol <name>] [--wire-fed] [--json]
     [--replay <file> [--trace <path>]]
      Exhaustively enumerates bounded executions for every processing
      method (default scope: `default`), validates each committed
      readset, and exits non-zero on any serializability violation,
      printing the minimized replayable counterexample. With --wire-fed
      every client hears its control reports through the wire codec
      (encode → framed bytes → decode) instead of in-memory structs; at
      the ci scope a wire-fed cross-check of one method runs even
      without the flag and fails the command if the wire-fed report is
      not bit-identical to the struct-fed one. With --replay, re-runs
      one serialized mc-schedule file instead; --trace additionally
      writes the replay's chrome trace_event JSON.
  bench [--quick] [--json] [--out <path>]
      Runs the SGT-substrate microbench (dense interned graph vs the
      BTree baseline, same fixed workload) and a per-method end-to-end
      simulator pass, then writes the all-integer `bpush-bench-v1`
      report to <path> (default: BENCH_3.json at the workspace root).
      `--quick` shrinks both passes; `--json` prints the report to
      stdout instead of the text summary.
  trace [--method <name>] [--quick] [--json] [--out-dir <dir>]
      Runs one fixed-seed traced simulation of <name> (default: sgt)
      and writes trace.json (chrome trace_event format — load it in
      Perfetto or chrome://tracing), trace.ndjson (one event per line),
      and metrics.json (the all-integer bpush-trace-v1 report) under
      <dir> (default: the workspace root). Two invocations with the
      same flags produce byte-identical files; `--json` additionally
      prints the metrics report to stdout.
  explain <file> [--json]
      Abort forensics: sniffs <file> as either a flight-recorder
      capture (bpush-capture-v1) or a traced run's metrics.json
      (bpush-trace-v1) and prints the causal chain — the violating
      invalidation-report entry, the conflicting write's cycle, the
      cycle distance, and the method-specific rule that fired (or, for
      a trace, the counter-based abort breakdown). `--json` emits the
      single-line bpush-explain-v1 document instead.";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(err) => {
            eprintln!("xtask: {err}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<ExitCode, Box<dyn std::error::Error>> {
    match args.first().map(String::as_str) {
        Some("lint") => lint(&args[1..]),
        Some("mc") => mc(&args[1..]),
        Some("bench") => bench(&args[1..]),
        Some("trace") => trace(&args[1..]),
        Some("explain") => explain(&args[1..]),
        Some("help") | Some("--help") | None => {
            println!("{USAGE}");
            Ok(ExitCode::SUCCESS)
        }
        Some(other) => {
            eprintln!("xtask: unknown command `{other}`\n{USAGE}");
            Ok(ExitCode::FAILURE)
        }
    }
}

fn lint(args: &[String]) -> Result<ExitCode, Box<dyn std::error::Error>> {
    let mut root: Option<PathBuf> = None;
    let mut json = false;
    let mut rule: Option<xtask::Rule> = None;
    let mut changed = false;
    let mut workers: Option<usize> = None;
    let mut budget_ms: Option<u64> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => match it.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => return Err("--root needs a directory argument".into()),
            },
            "--rule" => match it.next() {
                Some(name) => {
                    rule = Some(xtask::Rule::parse(name).ok_or_else(|| {
                        format!("unknown rule `{name}` (use a code like L8/hot-alloc)")
                    })?);
                }
                None => return Err("--rule needs a rule code argument".into()),
            },
            "--changed" => changed = true,
            "--workers" => match it.next() {
                Some(n) => {
                    workers = Some(
                        n.parse()
                            .map_err(|_| format!("--workers needs a thread count, got `{n}`"))?,
                    );
                }
                None => return Err("--workers needs a thread count argument".into()),
            },
            "--budget-ms" => match it.next() {
                Some(n) => {
                    budget_ms = Some(
                        n.parse()
                            .map_err(|_| format!("--budget-ms needs a number, got `{n}`"))?,
                    );
                }
                None => return Err("--budget-ms needs a millisecond ceiling argument".into()),
            },
            "--json" => json = true,
            other => return Err(format!("unknown lint option `{other}`\n{USAGE}").into()),
        }
    }
    let root = match root {
        Some(r) => r,
        None => find_workspace_root()?,
    };

    let mut report = xtask::lint_workspace_report_with_workers(
        &root,
        workers.unwrap_or_else(xtask::default_workers),
    )?;
    if let Some(rule) = rule {
        report.diagnostics.retain(|d| d.rule == rule);
    }
    if changed {
        let touched = git_changed_files(&root)?;
        report
            .diagnostics
            .retain(|d| !d.rule.file_scoped() || touched.contains(&d.file));
    }
    let total_ns = report
        .timing
        .read_ns
        .saturating_add(report.timing.lex_ns)
        .saturating_add(report.timing.index_ns)
        .saturating_add(report.timing.rules_ns);
    let over_budget = budget_ms.is_some_and(|ms| total_ns > ms.saturating_mul(1_000_000));
    if json {
        println!("{}", xtask::report_to_json(&report));
    } else if report.clean() {
        let suppressed: usize = report.suppressions.iter().map(|(_, n)| n).sum();
        println!(
            "xtask lint: clean — {} files under {} satisfy the rule catalog \
             ({} allow annotations; read {}us, lex {}us, index {}us, rules {}us \
             on {} workers)",
            report.files,
            root.join("crates").display(),
            suppressed,
            report.timing.read_ns / 1_000,
            report.timing.lex_ns / 1_000,
            report.timing.index_ns / 1_000,
            report.timing.rules_ns / 1_000,
            report.timing.workers,
        );
    } else {
        for d in &report.diagnostics {
            println!("{d}");
        }
        eprintln!(
            "xtask lint: {} violation{} found",
            report.diagnostics.len(),
            if report.diagnostics.len() == 1 {
                ""
            } else {
                "s"
            }
        );
    }
    if over_budget {
        eprintln!(
            "xtask lint: over budget — single pass took {}ms, ceiling is {}ms",
            total_ns / 1_000_000,
            budget_ms.unwrap_or_default(),
        );
        return Ok(ExitCode::FAILURE);
    }
    Ok(if report.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

/// Workspace-relative paths of files git considers touched: anything
/// differing from HEAD plus untracked files — the `--changed` scope.
fn git_changed_files(
    root: &std::path::Path,
) -> Result<std::collections::BTreeSet<PathBuf>, Box<dyn std::error::Error>> {
    let mut touched = std::collections::BTreeSet::new();
    for args in [
        &["diff", "--name-only", "HEAD"][..],
        &["ls-files", "--others", "--exclude-standard"][..],
    ] {
        let out = std::process::Command::new("git")
            .arg("-C")
            .arg(root)
            .args(args)
            .output()
            .map_err(|e| format!("--changed needs git on PATH: {e}"))?;
        if !out.status.success() {
            return Err(format!(
                "git {} failed under {}: {}",
                args.join(" "),
                root.display(),
                String::from_utf8_lossy(&out.stderr).trim()
            )
            .into());
        }
        for line in String::from_utf8_lossy(&out.stdout).lines() {
            if !line.is_empty() {
                touched.insert(PathBuf::from(line));
            }
        }
    }
    Ok(touched)
}

fn mc(args: &[String]) -> Result<ExitCode, Box<dyn std::error::Error>> {
    let mut scope = bpush_mc::Scope::default();
    let mut json = false;
    let mut wire_fed = false;
    let mut protocols: Vec<bpush_mc::ProtocolSpec> = Vec::new();
    let mut replay: Option<PathBuf> = None;
    let mut trace_out: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--wire-fed" => wire_fed = true,
            "--replay" => match it.next() {
                Some(path) => replay = Some(PathBuf::from(path)),
                None => return Err("--replay needs an mc-schedule file argument".into()),
            },
            "--trace" => match it.next() {
                Some(path) => trace_out = Some(PathBuf::from(path)),
                None => return Err("--trace needs an output file argument".into()),
            },
            "--scope" => match it.next() {
                Some(name) => {
                    scope = bpush_mc::Scope::parse(name)
                        .ok_or_else(|| format!("unknown scope `{name}` (ci, default)"))?;
                }
                None => return Err("--scope needs a preset name (ci, default)".into()),
            },
            "--protocol" => match it.next() {
                Some(name) => {
                    protocols.push(
                        bpush_mc::ProtocolSpec::parse(name)
                            .ok_or_else(|| format!("unknown protocol `{name}`"))?,
                    );
                }
                None => return Err("--protocol needs a method name".into()),
            },
            "--json" => json = true,
            other => return Err(format!("unknown mc option `{other}`\n{USAGE}").into()),
        }
    }
    if let Some(path) = replay {
        return mc_replay(&path, trace_out.as_deref());
    }
    if trace_out.is_some() {
        return Err("--trace is only meaningful together with --replay".into());
    }
    if protocols.is_empty() {
        protocols = bpush_mc::ProtocolSpec::genuine();
    }
    let feed = if wire_fed {
        bpush_mc::FeedMode::Wire
    } else {
        bpush_mc::FeedMode::Struct
    };
    let reports = protocols
        .iter()
        .map(|spec| bpush_mc::check_spec_fed(*spec, &scope, feed))
        .collect::<Result<Vec<_>, _>>()?;
    let mut passed = reports.iter().all(bpush_mc::McReport::passed);
    if json {
        println!("{}", bpush_mc::render_json(&scope, &reports));
    } else {
        print!("{}", bpush_mc::render_text(&scope, &reports));
    }
    // At the ci scope, a struct-fed run additionally cross-checks one
    // method wire-fed: the wire codec must not change the report.
    if !wire_fed && scope.preset_name() == Some("ci") {
        let spec = protocols
            .iter()
            .copied()
            .find(|s| s.name() == "sgt")
            .unwrap_or(protocols[0]);
        let struct_report = reports
            .iter()
            .find(|r| r.spec == spec)
            .ok_or("ci cross-check lost its struct-fed report")?;
        let wire_report = bpush_mc::check_spec_fed(spec, &scope, bpush_mc::FeedMode::Wire)?;
        let identical = wire_report.executions == struct_report.executions
            && wire_report.committed == struct_report.committed
            && wire_report.aborted == struct_report.aborted
            && wire_report.distinct_states == struct_report.distinct_states
            && wire_report.passed() == struct_report.passed();
        if identical {
            if !json {
                println!(
                    "wire-fed cross-check: {spec} — bit-identical \
                     ({} executions, {} distinct states)",
                    wire_report.executions, wire_report.distinct_states
                );
            }
        } else {
            eprintln!(
                "wire-fed cross-check FAILED: {spec} — wire-fed report diverged \
                 from the struct-fed run (codec divergence)"
            );
            passed = false;
        }
    }
    Ok(if passed {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

/// Replays one serialized mc-schedule file, optionally writing the
/// replay's chrome trace_event JSON to `trace_out`. Exits non-zero when
/// the replayed query commits a readset that violates serializability.
fn mc_replay(
    path: &std::path::Path,
    trace_out: Option<&std::path::Path>,
) -> Result<ExitCode, Box<dyn std::error::Error>> {
    let text = std::fs::read_to_string(path)?;
    let (spec, schedule) = bpush_mc::Schedule::parse(&text)?;
    let obs = if trace_out.is_some() {
        bpush_obs::Obs::recording(bpush_obs::DEFAULT_CAPACITY)
    } else {
        bpush_obs::Obs::off()
    };
    let exec = bpush_mc::run_schedule_traced(spec, &schedule, &obs)?;
    if let (Some(out), Some(snapshot)) = (trace_out, obs.snapshot()) {
        std::fs::write(out, bpush_obs::export::chrome_trace(&snapshot))?;
        println!("wrote {}", out.display());
    }
    println!(
        "mc replay: {spec} — {} ({} reads{})",
        if exec.committed {
            "committed".to_string()
        } else {
            format!("aborted: {:?}", exec.abort)
        },
        exec.reads.len(),
        match &exec.violation {
            Some(v) => format!("; VIOLATION: {v}"),
            None => String::new(),
        }
    );
    Ok(if exec.violation.is_some() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    })
}

fn trace(args: &[String]) -> Result<ExitCode, Box<dyn std::error::Error>> {
    let mut method = bpush_core::Method::Sgt;
    let mut quick = false;
    let mut json = false;
    let mut out_dir: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--method" => match it.next() {
                Some(name) => {
                    method = bpush_core::Method::ALL
                        .iter()
                        .copied()
                        .find(|m| m.name() == name)
                        .ok_or_else(|| format!("unknown method `{name}`"))?;
                }
                None => return Err("--method needs a method name".into()),
            },
            "--quick" => quick = true,
            "--json" => json = true,
            "--out-dir" => match it.next() {
                Some(dir) => out_dir = Some(PathBuf::from(dir)),
                None => return Err("--out-dir needs a directory argument".into()),
            },
            other => return Err(format!("unknown trace option `{other}`\n{USAGE}").into()),
        }
    }
    let dir = match out_dir {
        Some(d) => d,
        None => find_workspace_root()?,
    };
    std::fs::create_dir_all(&dir)?;

    let report = xtask::trace::run_trace(method, quick)?;
    let chrome = bpush_obs::export::chrome_trace(&report.snapshot);
    let ndjson = bpush_obs::export::ndjson(&report.snapshot);
    let metrics = xtask::trace::render_metrics_json(&report);
    std::fs::write(dir.join("trace.json"), &chrome)?;
    std::fs::write(dir.join("trace.ndjson"), &ndjson)?;
    std::fs::write(dir.join("metrics.json"), format!("{metrics}\n"))?;
    if json {
        println!("{metrics}");
    } else {
        print!("{}", xtask::trace::render_text(&report));
    }
    println!(
        "wrote {}, {}, {}",
        dir.join("trace.json").display(),
        dir.join("trace.ndjson").display(),
        dir.join("metrics.json").display()
    );
    Ok(ExitCode::SUCCESS)
}

fn bench(args: &[String]) -> Result<ExitCode, Box<dyn std::error::Error>> {
    let mut quick = false;
    let mut json = false;
    let mut out: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--json" => json = true,
            "--out" => match it.next() {
                Some(path) => out = Some(PathBuf::from(path)),
                None => return Err("--out needs a file argument".into()),
            },
            other => return Err(format!("unknown bench option `{other}`\n{USAGE}").into()),
        }
    }
    let path = match out {
        Some(p) => p,
        None => find_workspace_root()?.join("BENCH_3.json"),
    };

    let report = xtask::bench::run_bench(quick)?;
    let rendered = xtask::bench::render_json(&report);
    std::fs::write(&path, format!("{rendered}\n"))?;
    if json {
        println!("{rendered}");
    } else {
        print!("{}", xtask::bench::render_text(&report));
        let trajectory = xtask::bench::load_trajectory(&find_workspace_root()?)?;
        print!("\n{}", xtask::bench::render_trajectory(&trajectory));
        println!("\nwrote {}", path.display());
    }
    Ok(ExitCode::SUCCESS)
}

fn explain(args: &[String]) -> Result<ExitCode, Box<dyn std::error::Error>> {
    let mut json = false;
    let mut file: Option<PathBuf> = None;
    for arg in args {
        match arg.as_str() {
            "--json" => json = true,
            other if other.starts_with("--") => {
                return Err(format!("unknown explain option `{other}`\n{USAGE}").into());
            }
            path => {
                if file.replace(PathBuf::from(path)).is_some() {
                    return Err("explain takes exactly one input file".into());
                }
            }
        }
    }
    let Some(path) = file else {
        return Err(format!("explain needs a capture or metrics.json file\n{USAGE}").into());
    };
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let explanation = xtask::explain::explain(&text)?;
    if json {
        println!("{}", xtask::explain::render_json(&explanation));
    } else {
        print!("{}", xtask::explain::render_text(&explanation));
    }
    Ok(ExitCode::SUCCESS)
}

/// Walks up from the current directory to the first `Cargo.toml` that
/// declares `[workspace]`.
fn find_workspace_root() -> Result<PathBuf, Box<dyn std::error::Error>> {
    let mut dir = std::env::current_dir()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Ok(dir);
            }
        }
        if !dir.pop() {
            return Err("no workspace root found above the current directory \
                        (pass --root explicitly)"
                .into());
        }
    }
}
