//! Command-line entry point for the workspace's static-analysis pass.
//!
//! Usage: `cargo run -p xtask -- lint [--root <dir>]` (or `cargo xtask
//! lint` through the repo's cargo alias). Exits non-zero when any rule
//! fires; see the `xtask` library docs for the rule catalog.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: cargo run -p xtask -- lint [--root <workspace-root>]

Runs the bpush rule catalog (L1/panic, L2/determinism, L3/crate-attrs,
L4/conformance, L5/locks) over every crate under <root>/crates and
exits non-zero if any rule fires.";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(err) => {
            eprintln!("xtask: {err}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<ExitCode, Box<dyn std::error::Error>> {
    match args.first().map(String::as_str) {
        Some("lint") => lint(&args[1..]),
        Some("help") | Some("--help") | None => {
            println!("{USAGE}");
            Ok(ExitCode::SUCCESS)
        }
        Some(other) => {
            eprintln!("xtask: unknown command `{other}`\n{USAGE}");
            Ok(ExitCode::FAILURE)
        }
    }
}

fn lint(args: &[String]) -> Result<ExitCode, Box<dyn std::error::Error>> {
    let mut root: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => match it.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => return Err("--root needs a directory argument".into()),
            },
            other => return Err(format!("unknown lint option `{other}`\n{USAGE}").into()),
        }
    }
    let root = match root {
        Some(r) => r,
        None => find_workspace_root()?,
    };

    let diagnostics = xtask::lint_workspace(&root)?;
    if diagnostics.is_empty() {
        let crates = xtask::workspace_crates(&root)?;
        println!(
            "xtask lint: clean — {} crates under {} satisfy the rule catalog",
            crates.len(),
            root.join("crates").display()
        );
        return Ok(ExitCode::SUCCESS);
    }
    for d in &diagnostics {
        println!("{d}");
    }
    eprintln!(
        "xtask lint: {} violation{} found",
        diagnostics.len(),
        if diagnostics.len() == 1 { "" } else { "s" }
    );
    Ok(ExitCode::FAILURE)
}

/// Walks up from the current directory to the first `Cargo.toml` that
/// declares `[workspace]`.
fn find_workspace_root() -> Result<PathBuf, Box<dyn std::error::Error>> {
    let mut dir = std::env::current_dir()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Ok(dir);
            }
        }
        if !dir.pop() {
            return Err("no workspace root found above the current directory \
                        (pass --root explicitly)"
                .into());
        }
    }
}
