//! A minimal strict JSON reader for the subset every bpush emitter
//! produces (objects, arrays, strings, unsigned integers, booleans,
//! null). Used by the bench-trajectory loader to validate checked-in
//! `BENCH_*.json` reports without external dependencies; the schema
//! tests in `tests/json_schema.rs` keep their own independent copy on
//! purpose, so a parser bug cannot vouch for itself.

/// One parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// An unsigned integer (the only number shape bpush emits).
    Num(u64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in document order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on an object.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an unsigned integer, if it is one.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parses one JSON document; trailing non-whitespace is an error.
///
/// # Errors
/// Returns a human-readable description of the first syntax problem.
pub fn parse(text: &str) -> Result<Json, String> {
    let chars: Vec<char> = text.chars().collect();
    let mut pos = 0;
    let value = parse_value(&chars, &mut pos)?;
    skip_ws(&chars, &mut pos);
    if pos != chars.len() {
        return Err(format!("trailing garbage at offset {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[char], pos: &mut usize) {
    while b.get(*pos).is_some_and(|c| c.is_ascii_whitespace()) {
        *pos += 1;
    }
}

fn expect(b: &[char], pos: &mut usize, c: char) -> Result<(), String> {
    if b.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{c}` at offset {pos}"))
    }
}

fn parse_value(b: &[char], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some('{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, ':')?;
                pairs.push((key, parse_value(b, pos)?));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(',') => *pos += 1,
                    Some('}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    other => return Err(format!("expected `,` or `}}`, got {other:?}")),
                }
            }
        }
        Some('[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(',') => *pos += 1,
                    Some(']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    other => return Err(format!("expected `,` or `]`, got {other:?}")),
                }
            }
        }
        Some('"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some('t') if matches(b, *pos, "true") => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        Some('f') if matches(b, *pos, "false") => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        Some('n') if matches(b, *pos, "null") => {
            *pos += 4;
            Ok(Json::Null)
        }
        Some(c) if c.is_ascii_digit() => {
            let start = *pos;
            while b.get(*pos).is_some_and(char::is_ascii_digit) {
                *pos += 1;
            }
            let digits: String = b[start..*pos].iter().collect();
            digits
                .parse()
                .map(Json::Num)
                .map_err(|e| format!("bad number `{digits}`: {e}"))
        }
        other => Err(format!("unexpected character {other:?} at offset {pos}")),
    }
}

fn matches(b: &[char], pos: usize, word: &str) -> bool {
    word.chars()
        .enumerate()
        .all(|(i, c)| b.get(pos + i) == Some(&c))
}

fn parse_string(b: &[char], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, '"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            Some('"') => {
                *pos += 1;
                return Ok(out);
            }
            Some('\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('/') => out.push('/'),
                    Some('n') => out.push('\n'),
                    Some('r') => out.push('\r'),
                    Some('t') => out.push('\t'),
                    Some('u') => {
                        let hex: String = b
                            .get(*pos + 1..*pos + 5)
                            .map(|s| s.iter().collect())
                            .unwrap_or_default();
                        let code = u32::from_str_radix(&hex, 16)
                            .map_err(|e| format!("bad \\u escape `{hex}`: {e}"))?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape {other:?}")),
                }
                *pos += 1;
            }
            Some(&c) => {
                if u32::from(c) < 0x20 {
                    return Err("unescaped control character".to_string());
                }
                out.push(c);
                *pos += 1;
            }
            None => return Err("unterminated string".to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_of_the_bench_shape() {
        let doc = r#"{"schema":"bpush-bench-v1","seed":7,"quick":false,"substrate":[{"name":"a","iters":3}],"methods":[]}"#;
        let v = parse(doc).unwrap();
        assert_eq!(
            v.get("schema").and_then(Json::as_str),
            Some("bpush-bench-v1")
        );
        assert_eq!(v.get("seed").and_then(Json::as_u64), Some(7));
        assert_eq!(v.get("quick").and_then(Json::as_bool), Some(false));
        assert_eq!(
            v.get("methods").and_then(Json::as_arr).map(<[Json]>::len),
            Some(0)
        );
        let sub = v.get("substrate").and_then(Json::as_arr).unwrap();
        assert_eq!(sub[0].get("iters").and_then(Json::as_u64), Some(3));
    }

    #[test]
    fn garbage_is_an_error_not_a_panic() {
        for bad in ["", "{", "[1,", "{\"a\":}", "tru", "\"unterminated", "1 2"] {
            assert!(parse(bad).is_err(), "{bad:?} must fail");
        }
    }
}
