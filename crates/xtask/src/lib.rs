//! bpush's project-specific static-analysis pass.
//!
//! Run it as `cargo run -p xtask -- lint` (or `cargo xtask lint` via the
//! repo's cargo alias). The pass walks every workspace crate under
//! `crates/` and enforces a catalog of invariants that generic tooling
//! cannot express:
//!
//! | code | rule |
//! |------|------|
//! | `L0/annotation` | the escape-hatch annotation itself must be well-formed |
//! | `L1/panic` | no `unwrap`/`expect`/`panic!` family in non-test first-party code |
//! | `L2/determinism` | the protocol crates (`sgraph`, `core`, `client`, `server`, `broadcast`) must stay bit-for-bit deterministic: no ambient RNG, no wall clocks, no hash-ordered collections |
//! | `L3/crate-attrs` | every crate root carries `#![forbid(unsafe_code)]` and `#![deny(missing_docs)]` |
//! | `L4/conformance` | every `ReadOnlyProtocol` impl is exercised by the `bpush-core` conformance battery from some `tests/` file |
//! | `L5/locks` | `parking_lot` is the workspace lock standard; `std::sync` `Mutex`/`RwLock` are rejected |
//! | `L6/casts` | no lossy `as` narrowing of numerics in the deterministic crates; convert with `From`/`TryFrom` instead |
//! | `L7/stdout` | no `println!`/`eprintln!` family in the deterministic crates; observations go through the `bpush-obs` sink |
//! | `L8/hot-alloc` | functions annotated `// bpush-lint: hot_path` must not *transitively* reach allocating constructs (`Box::new`, `Vec::push`, `format!`, `collect`, …) |
//! | `L9/sans-io` | files declared `// bpush-lint: sans_io` (the protocol core) must not transitively reach clocks, threads, channels, filesystem, or sockets |
//! | `L10/lock-order` | the workspace lock-acquisition graph must be acyclic (deadlock freedom) |
//! | `L11/taint` | token-level determinism taint: renamed imports and cross-crate call chains cannot smuggle `Instant`/`HashMap`-style constructs into the deterministic crates past L2's text match |
//! | `L12/panic-reach` | nothing reachable from a `hot_path` or `sans_io` entry point may hit an implicit panic site (indexing, slicing, non-constant division, `unreachable!`) |
//! | `L13/state-total` | matches over `protocol_enum`-marked enums must name every variant — wildcard `_` and catch-all binding arms are banned |
//! | `L14/decode-bounds` | files marked `decode_path` may only touch input bytes through checked `take_*` accessors — no raw indexing/slicing |
//! | `L15/overflow` | arithmetic on tick/cycle/id-typed values must be checked/wrapping/saturating or carry an annotated justification |
//!
//! Rules L0–L7 are line-level; L8–L15 are interprocedural dataflow
//! rules, built on the token stream from [`lex`], the item index from
//! [`items`], and the workspace call graph from [`callgraph`] (see
//! [`analysis`] for the drivers). Every file is read, lexed, and
//! indexed exactly once per run — in parallel across `std::thread`
//! workers with deterministic path-sorted output — and all sixteen
//! rules share that pass; `--json` reports the per-phase micro-timings.
//!
//! # Escape hatch
//!
//! A violation can be waived in place with a line comment of the form
//! `lint: allow(panic) — reason the construct is sound here`, either at
//! the end of the offending line or alone on the line directly above it.
//! The rule name goes in the parentheses (`panic`, `determinism`,
//! `crate-attrs`, `conformance`, `locks`, `casts`, `stdout`,
//! `hot-alloc`, `sans-io`, `lock-order`, `taint`, `panic-reach`,
//! `state-total`, `decode-bounds`, or `overflow`; comma-separated for
//! more than one) and the trailing reason is mandatory — an annotation
//! with no reason, or naming an unknown rule, is itself reported as
//! `L0/annotation`. `lint --json` publishes the per-rule suppression
//! counts so the escape-hatch budget is visible (and pinned by a test).
//!
//! # Contract annotations
//!
//! * `// bpush-lint: hot_path` above (or on) a `fn` marks it as an L8
//!   contract holder: nothing it transitively calls may allocate.
//! * `// bpush-lint: sans_io` anywhere in a file declares the whole file
//!   protocol-core for L9 (its functions also become L12 entry points).
//! * `// bpush-lint: protocol_enum` above (or on) an `enum` makes every
//!   match over it an L13 exhaustiveness contract.
//! * `// bpush-lint: decode_path` anywhere in a file bans raw byte
//!   indexing in it for L14.
//!
//! # How matching works
//!
//! Sources are scanned after a lexical pass that strips comments and
//! blanks out the *contents* of string literals (delimiters are kept).
//! Rules therefore never fire on prose, doc-test examples, or needles
//! quoted inside strings — which is also what lets this crate lint
//! itself. `#[cfg(test)]` regions are excluded by brace counting on the
//! stripped text.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod analysis;
pub mod bench;
pub mod callgraph;
pub mod explain;
pub mod items;
pub mod jsonv;
pub mod lex;
pub mod trace;

use std::collections::BTreeSet;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::time::Instant;

use lex::{lex_tokens, split_source, test_mask, SplitLine};

/// Identifier of one rule in the lint catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// `L0/annotation`: an escape-hatch annotation is malformed.
    Annotation,
    /// `L1/panic`: panic path in non-test first-party code.
    Panic,
    /// `L2/determinism`: non-deterministic construct in a protocol crate.
    Determinism,
    /// `L3/crate-attrs`: crate root is missing a mandatory attribute.
    CrateAttrs,
    /// `L4/conformance`: a `ReadOnlyProtocol` impl escapes the battery.
    Conformance,
    /// `L5/locks`: `std::sync` lock where `parking_lot` is the standard.
    Locks,
    /// `L6/casts`: lossy `as` numeric cast in a deterministic crate.
    Casts,
    /// `L7/stdout`: `println!`-family output in a deterministic crate.
    Stdout,
    /// `L8/hot-alloc`: a `hot_path` fn transitively allocates.
    HotAlloc,
    /// `L9/sans-io`: a `sans_io` file transitively touches the outside world.
    SansIo,
    /// `L10/lock-order`: the lock-acquisition graph has a cycle.
    LockOrder,
    /// `L11/taint`: determinism taint smuggled past L2's text match.
    Taint,
    /// `L12/panic-reach`: an implicit panic site is reachable from a
    /// `hot_path`/`sans_io` entry point.
    PanicReach,
    /// `L13/state-total`: a match over a protocol enum hides variants
    /// behind a wildcard or catch-all arm.
    StateTotal,
    /// `L14/decode-bounds`: raw byte indexing in a decode-path file.
    DecodeBounds,
    /// `L15/overflow`: unchecked arithmetic on a tick-typed value.
    Overflow,
}

/// Every rule, in catalog order (the order `suppressions` reports in).
pub const ALL_RULES: &[Rule] = &[
    Rule::Annotation,
    Rule::Panic,
    Rule::Determinism,
    Rule::CrateAttrs,
    Rule::Conformance,
    Rule::Locks,
    Rule::Casts,
    Rule::Stdout,
    Rule::HotAlloc,
    Rule::SansIo,
    Rule::LockOrder,
    Rule::Taint,
    Rule::PanicReach,
    Rule::StateTotal,
    Rule::DecodeBounds,
    Rule::Overflow,
];

impl Rule {
    /// Stable diagnostic code printed in front of every finding.
    pub fn code(self) -> &'static str {
        match self {
            Rule::Annotation => "L0/annotation",
            Rule::Panic => "L1/panic",
            Rule::Determinism => "L2/determinism",
            Rule::CrateAttrs => "L3/crate-attrs",
            Rule::Conformance => "L4/conformance",
            Rule::Locks => "L5/locks",
            Rule::Casts => "L6/casts",
            Rule::Stdout => "L7/stdout",
            Rule::HotAlloc => "L8/hot-alloc",
            Rule::SansIo => "L9/sans-io",
            Rule::LockOrder => "L10/lock-order",
            Rule::Taint => "L11/taint",
            Rule::PanicReach => "L12/panic-reach",
            Rule::StateTotal => "L13/state-total",
            Rule::DecodeBounds => "L14/decode-bounds",
            Rule::Overflow => "L15/overflow",
        }
    }

    /// Name accepted inside the parentheses of an allow annotation.
    pub fn allow_name(self) -> &'static str {
        match self {
            Rule::Annotation => "annotation",
            Rule::Panic => "panic",
            Rule::Determinism => "determinism",
            Rule::CrateAttrs => "crate-attrs",
            Rule::Conformance => "conformance",
            Rule::Locks => "locks",
            Rule::Casts => "casts",
            Rule::Stdout => "stdout",
            Rule::HotAlloc => "hot-alloc",
            Rule::SansIo => "sans-io",
            Rule::LockOrder => "lock-order",
            Rule::Taint => "taint",
            Rule::PanicReach => "panic-reach",
            Rule::StateTotal => "state-total",
            Rule::DecodeBounds => "decode-bounds",
            Rule::Overflow => "overflow",
        }
    }

    /// Parses a rule from its `code()` or its `allow_name()` (what
    /// `cargo xtask lint --rule` accepts).
    pub fn parse(name: &str) -> Option<Rule> {
        ALL_RULES
            .iter()
            .copied()
            .find(|r| r.code() == name || r.allow_name() == name)
    }

    fn from_allow_name(name: &str) -> Option<Rule> {
        ALL_RULES
            .iter()
            .copied()
            .filter(|r| *r != Rule::Annotation)
            .find(|r| r.allow_name() == name)
    }

    /// Whether every finding of this rule is attributable to the file
    /// it is reported in — the rules `lint --changed` can scope to the
    /// touched files. The interprocedural reachability rules (L4, L8,
    /// L9, L10, L11, L12) can blame a file for an edit elsewhere, so
    /// they always see the whole graph.
    pub fn file_scoped(self) -> bool {
        !matches!(
            self,
            Rule::Conformance
                | Rule::HotAlloc
                | Rule::SansIo
                | Rule::LockOrder
                | Rule::Taint
                | Rule::PanicReach
        )
    }
}

/// One finding: a rule violated at a file and line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Which rule fired.
    pub rule: Rule,
    /// Path of the offending file, relative to the workspace root.
    pub file: PathBuf,
    /// 1-based line number of the finding.
    pub line: usize,
    /// Human-readable explanation with the suggested fix.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {}:{} — {}",
            self.rule.code(),
            self.file.display(),
            self.line,
            self.message
        )
    }
}

/// Failure to *run* the pass (I/O trouble, not a workspace, ...), as
/// opposed to findings, which are [`Diagnostic`]s.
#[derive(Debug)]
pub enum LintError {
    /// Reading a file or directory failed.
    Io {
        /// The path that could not be read.
        path: PathBuf,
        /// The underlying error.
        source: io::Error,
    },
    /// The given root has no `crates/` directory with any crates in it.
    NotAWorkspace(PathBuf),
}

impl fmt::Display for LintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LintError::Io { path, source } => {
                write!(f, "cannot read {}: {source}", path.display())
            }
            LintError::NotAWorkspace(root) => write!(
                f,
                "{} does not look like the workspace root (no crates/*/Cargo.toml)",
                root.display()
            ),
        }
    }
}

impl std::error::Error for LintError {}

/// Crates whose sources must be bit-for-bit deterministic (rule L2):
/// everything on the simulated protocol path, identified by directory
/// name under `crates/`.
pub const DETERMINISTIC_CRATES: &[&str] = &[
    "sgraph",
    "core",
    "client",
    "server",
    "broadcast",
    "mc",
    "obs",
];

const PANIC_NEEDLES: &[&str] = &[
    ".unwrap()",
    ".expect(",
    "panic!(",
    "unreachable!(",
    "todo!(",
    "unimplemented!(",
];

const DETERMINISM_NEEDLES: &[&str] = &[
    "thread_rng",
    "SystemTime::now",
    "Instant::now",
    "HashMap",
    "HashSet",
];

/// Targets for which an `as` cast can silently drop bits (or, for
/// `f32`, precision). Widening targets (`u64`, `i64`, `usize`, `f64`)
/// are exempt: on every supported platform they cannot lose integer
/// information that the protocol crates put into them.
const NARROWING_CAST_NEEDLES: &[&str] = &[
    " as u8", " as u16", " as u32", " as i8", " as i16", " as i32", " as f32",
];

/// Longest-first so the reported needle is the macro actually written
/// (`println!(` is a substring of `eprintln!(`).
const STDOUT_NEEDLES: &[&str] = &["eprintln!(", "println!(", "eprint!(", "print!("];

const FORBID_UNSAFE: &str = "#![forbid(unsafe_code)]";
const DENY_MISSING_DOCS: &str = "#![deny(missing_docs)]";

/// Lists the workspace crates under `root/crates`, sorted by name.
///
/// # Errors
/// Fails if the `crates/` directory cannot be read, or contains no
/// crate (a directory with a `Cargo.toml`).
pub fn workspace_crates(root: &Path) -> Result<Vec<(String, PathBuf)>, LintError> {
    let crates_dir = root.join("crates");
    let mut found = Vec::new();
    for entry in read_dir_sorted(&crates_dir)? {
        if entry.join("Cargo.toml").is_file() {
            let name = entry
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            found.push((name, entry));
        }
    }
    if found.is_empty() {
        return Err(LintError::NotAWorkspace(root.to_path_buf()));
    }
    Ok(found)
}

/// Micro-timings of the shared single pass, in nanoseconds. The
/// per-file phases (`read`, `lex`, `index`) run on `workers` threads
/// and are summed across them (CPU time, not wall time); `rules_ns` is
/// the wall time of the single-threaded rules phase.
#[derive(Debug, Clone, Copy, Default)]
pub struct LintTiming {
    /// Time spent reading source files off disk.
    pub read_ns: u64,
    /// Time spent in the lexical pass (split + tokenize), once per file.
    pub lex_ns: u64,
    /// Time spent building the per-file item indexes.
    pub index_ns: u64,
    /// Time spent running all sixteen rules over the shared pass.
    pub rules_ns: u64,
    /// Worker threads the per-file phases ran on.
    pub workers: usize,
}

/// The full result of one lint run: findings plus the summary facts the
/// self-tests pin.
#[derive(Debug, Clone, Default)]
pub struct LintReport {
    /// Findings, sorted by file, line, then rule.
    pub diagnostics: Vec<Diagnostic>,
    /// Number of source files analyzed.
    pub files: usize,
    /// Micro-timings of the shared pass.
    pub timing: LintTiming,
    /// Count of `lint: allow(…)` mentions per rule, in [`ALL_RULES`]
    /// order — the escape-hatch budget.
    pub suppressions: Vec<(Rule, usize)>,
    /// Every `crate::fn` carrying the `hot_path` annotation (L8 set).
    pub hot_functions: Vec<String>,
    /// Every file declaring `sans_io` (L9 surface), workspace-relative.
    pub sans_io_files: Vec<String>,
    /// Every enum carrying the `protocol_enum` annotation (L13 set).
    pub protocol_enums: Vec<String>,
    /// Every file declaring `decode_path` (L14 surface), workspace-relative.
    pub decode_files: Vec<String>,
}

impl LintReport {
    /// Whether the workspace lints clean.
    #[must_use]
    pub fn clean(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

/// Runs the whole catalog over every crate under `root/crates`,
/// returning the findings sorted by file, line, then rule.
///
/// An empty result means the workspace is clean.
///
/// # Errors
/// Propagates I/O failures; findings are *not* errors.
pub fn lint_workspace(root: &Path) -> Result<Vec<Diagnostic>, LintError> {
    lint_workspace_report(root).map(|r| r.diagnostics)
}

/// One source file after the shared read + lex pass. All twelve rules
/// consume this record; nothing re-reads or re-tokenizes.
struct FileRecord {
    crate_name: String,
    rel: PathBuf,
    is_crate_root: bool,
    lines: Vec<SplitLine>,
    mask: Vec<bool>,
    allows: Vec<BTreeSet<Rule>>,
    malformed: Vec<(usize, String)>,
    allow_counts: Vec<(Rule, usize)>,
}

/// Runs the whole catalog and returns the full [`LintReport`] —
/// findings, suppression budget, timings, and the L8/L9/L13/L14
/// surfaces. The per-file read + lex + index phases run across the
/// default worker count (see [`default_workers`]).
///
/// # Errors
/// Propagates I/O failures; findings are *not* errors.
pub fn lint_workspace_report(root: &Path) -> Result<LintReport, LintError> {
    lint_workspace_report_with_workers(root, default_workers())
}

/// Worker threads the per-file phases run on by default: the machine's
/// available parallelism, capped at 8 (the pass saturates well before
/// that on this workspace's file count).
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .min(8)
}

/// One prepared source file: the shared record plus its item index.
type Prepared = (FileRecord, items::FileIndex);

/// Reads, lexes, and indexes one source file, accumulating the phase
/// timings. This is the per-file unit of work the workers run.
fn prepare_file(
    root: &Path,
    name: &str,
    file: &Path,
    is_crate_root: bool,
    read_ns: &mut u64,
    lex_ns: &mut u64,
    index_ns: &mut u64,
) -> Result<Prepared, LintError> {
    let t0 = Instant::now();
    let text = read_file(file)?;
    *read_ns = read_ns.saturating_add(elapsed_ns(t0));

    let t1 = Instant::now();
    let lines = split_source(&text);
    let tokens = lex_tokens(&lines);
    *lex_ns = lex_ns.saturating_add(elapsed_ns(t1));

    let mask = test_mask(&lines);
    let (allows, malformed, allow_counts) = collect_allows(&lines);
    let rel = file.strip_prefix(root).unwrap_or(file).to_path_buf();

    let t2 = Instant::now();
    let index = items::index_file(name, &rel, &lines, &mask, &tokens, &allows);
    *index_ns = index_ns.saturating_add(elapsed_ns(t2));

    let rec = FileRecord {
        crate_name: name.to_string(),
        rel,
        is_crate_root,
        lines,
        mask,
        allows,
        malformed,
        allow_counts,
    };
    Ok((rec, index))
}

/// [`lint_workspace_report`] with an explicit worker count for the
/// per-file phases. The file list is enumerated serially in sorted
/// order, split into contiguous chunks, and reassembled by position, so
/// the report is byte-identical for every worker count (pinned by a
/// test).
///
/// # Errors
/// Propagates I/O failures; findings are *not* errors.
pub fn lint_workspace_report_with_workers(
    root: &Path,
    workers: usize,
) -> Result<LintReport, LintError> {
    let crates = workspace_crates(root)?;
    let deps = callgraph::DepMap::load(&crates)?;

    // Serial enumeration: the path-sorted work list that fixes the
    // output order regardless of worker count.
    let mut sources: Vec<(String, PathBuf, bool)> = Vec::new();
    let mut evidence_files: Vec<PathBuf> = Vec::new();
    for (name, path) in &crates {
        let src = path.join("src");
        if src.is_dir() {
            let mut files = Vec::new();
            walk_rs(&src, &mut files)?;
            let root_file = crate_root_file(&src);
            for file in files {
                let is_root = Some(file.as_path()) == root_file.as_deref();
                sources.push((name.clone(), file, is_root));
            }
        }
        let tests = path.join("tests");
        if tests.is_dir() {
            walk_rs(&tests, &mut evidence_files)?;
        }
    }

    let mut timing = LintTiming::default();
    let workers = workers.clamp(1, sources.len().max(1));
    timing.workers = workers;
    let chunk = sources.len().div_ceil(workers.max(1)).max(1);

    let mut slots: Vec<Option<Prepared>> = Vec::new();
    slots.resize_with(sources.len(), || None);
    let worker_results: Vec<Result<(u64, u64, u64), LintError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = slots
            .chunks_mut(chunk)
            .zip(sources.chunks(chunk))
            .map(|(out, work)| {
                scope.spawn(move || {
                    let (mut read_ns, mut lex_ns, mut index_ns) = (0u64, 0u64, 0u64);
                    for (slot, (name, file, is_root)) in out.iter_mut().zip(work) {
                        *slot = Some(prepare_file(
                            root,
                            name,
                            file,
                            *is_root,
                            &mut read_ns,
                            &mut lex_ns,
                            &mut index_ns,
                        )?);
                    }
                    Ok((read_ns, lex_ns, index_ns))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or_else(|payload| std::panic::resume_unwind(payload))
            })
            .collect()
    });
    for result in worker_results {
        let (read_ns, lex_ns, index_ns) = result?;
        timing.read_ns = timing.read_ns.saturating_add(read_ns);
        timing.lex_ns = timing.lex_ns.saturating_add(lex_ns);
        timing.index_ns = timing.index_ns.saturating_add(index_ns);
    }

    let t0 = Instant::now();
    let mut evidence: Vec<String> = Vec::new();
    for file in &evidence_files {
        evidence.push(read_file(file)?);
    }
    timing.read_ns = timing.read_ns.saturating_add(elapsed_ns(t0));

    let mut records: Vec<FileRecord> = Vec::with_capacity(slots.len());
    let mut indexes: Vec<items::FileIndex> = Vec::with_capacity(slots.len());
    // Every slot was filled or its worker's error already returned.
    for (rec, index) in slots.into_iter().flatten() {
        records.push(rec);
        indexes.push(index);
    }

    let t2 = Instant::now();
    let mut diags: Vec<Diagnostic> = Vec::new();
    let mut impls: Vec<ProtocolImpl> = Vec::new();
    for rec in &records {
        lint_record(rec, &mut diags, &mut impls);
    }

    // Rule L4: every impl needs a tests/ file naming the type alongside
    // the conformance battery.
    for imp in &impls {
        if imp.allowed {
            continue;
        }
        let covered = evidence
            .iter()
            .any(|text| text.contains(&imp.type_name) && text.contains("conformance"));
        if !covered {
            diags.push(Diagnostic {
                rule: Rule::Conformance,
                file: imp.file.clone(),
                line: imp.line,
                message: format!(
                    "`{}` implements ReadOnlyProtocol but no tests/ file runs it \
                     through the bpush-core conformance battery",
                    imp.type_name
                ),
            });
        }
    }

    // Rules L8–L15: the interprocedural pass over the shared index.
    let summary = analysis::run(&indexes, &deps, &mut diags);

    diags.sort_by(|a, b| {
        (&a.file, a.line, a.rule, &a.message).cmp(&(&b.file, b.line, b.rule, &b.message))
    });
    timing.rules_ns = elapsed_ns(t2);

    let mut suppressions: Vec<(Rule, usize)> = ALL_RULES.iter().map(|r| (*r, 0)).collect();
    for rec in &records {
        for (rule, n) in &rec.allow_counts {
            if let Some(slot) = suppressions.iter_mut().find(|(r, _)| r == rule) {
                slot.1 += n;
            }
        }
    }

    Ok(LintReport {
        diagnostics: diags,
        files: records.len(),
        timing,
        suppressions,
        hot_functions: summary.hot_functions,
        sans_io_files: summary.sans_io_files,
        protocol_enums: summary.protocol_enums,
        decode_files: summary.decode_files,
    })
}

fn elapsed_ns(start: Instant) -> u64 {
    u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// A `ReadOnlyProtocol` impl discovered in non-test code.
struct ProtocolImpl {
    type_name: String,
    file: PathBuf,
    line: usize,
    allowed: bool,
}

/// The line-level rules (L0–L3, L5–L7) over one prepared record.
fn lint_record(rec: &FileRecord, diags: &mut Vec<Diagnostic>, impls: &mut Vec<ProtocolImpl>) {
    let rel = &rec.rel;
    for (line, message) in &rec.malformed {
        diags.push(Diagnostic {
            rule: Rule::Annotation,
            file: rel.clone(),
            line: *line,
            message: message.clone(),
        });
    }

    // Rule L3: mandatory crate-root attributes.
    if rec.is_crate_root {
        for attr in [FORBID_UNSAFE, DENY_MISSING_DOCS] {
            let present = rec.lines.iter().any(|l| l.code.contains(attr));
            if !present {
                diags.push(Diagnostic {
                    rule: Rule::CrateAttrs,
                    file: rel.clone(),
                    line: 1,
                    message: format!("crate root is missing `{attr}`"),
                });
            }
        }
    }

    let deterministic = DETERMINISTIC_CRATES.contains(&rec.crate_name.as_str());

    for (idx, line) in rec.lines.iter().enumerate() {
        if rec.mask[idx] {
            continue;
        }
        let lineno = idx + 1;
        let code = &line.code;
        let allowed = &rec.allows[idx];

        // Rule L1: panic-freedom.
        if !allowed.contains(&Rule::Panic) {
            if let Some(needle) = PANIC_NEEDLES.iter().find(|n| code.contains(**n)) {
                diags.push(Diagnostic {
                    rule: Rule::Panic,
                    file: rel.clone(),
                    line: lineno,
                    message: format!(
                        "panic path `{}` in non-test code; return a `Result` via \
                         bpush_types::error or annotate with a reason",
                        needle.trim_end_matches('(')
                    ),
                });
            }
        }

        // Rule L2: determinism in the protocol crates.
        if deterministic && !allowed.contains(&Rule::Determinism) {
            if let Some(needle) = DETERMINISM_NEEDLES.iter().find(|n| code.contains(**n)) {
                diags.push(Diagnostic {
                    rule: Rule::Determinism,
                    file: rel.clone(),
                    line: lineno,
                    message: format!(
                        "non-deterministic construct `{needle}` in deterministic crate \
                         `{}`; use seeded rand and BTree collections",
                        rec.crate_name
                    ),
                });
            }
        }

        // Rule L6: lossy numeric casts in the deterministic crates.
        if deterministic && !allowed.contains(&Rule::Casts) {
            if let Some(needle) = NARROWING_CAST_NEEDLES
                .iter()
                .find(|n| cast_matches(code, n))
            {
                diags.push(Diagnostic {
                    rule: Rule::Casts,
                    file: rel.clone(),
                    line: lineno,
                    message: format!(
                        "lossy `{}` cast in deterministic crate `{}`; convert with \
                         `From`/`TryFrom` or annotate with a reason",
                        needle.trim_start(),
                        rec.crate_name
                    ),
                });
            }
        }

        // Rule L7: no direct terminal output in the deterministic
        // crates — observations belong in the bpush-obs sink, where
        // they stay replayable and cost nothing when disabled.
        if deterministic && !allowed.contains(&Rule::Stdout) {
            if let Some(needle) = STDOUT_NEEDLES.iter().find(|n| code.contains(**n)) {
                diags.push(Diagnostic {
                    rule: Rule::Stdout,
                    file: rel.clone(),
                    line: lineno,
                    message: format!(
                        "`{}` in deterministic crate `{}`; emit through the bpush-obs \
                         sink (or annotate with a reason)",
                        needle.trim_end_matches('('),
                        rec.crate_name
                    ),
                });
            }
        }

        // Rule L5: std::sync locks.
        if !allowed.contains(&Rule::Locks)
            && code.contains("std::sync")
            && (code.contains("Mutex") || code.contains("RwLock"))
        {
            diags.push(Diagnostic {
                rule: Rule::Locks,
                file: rel.clone(),
                line: lineno,
                message: "std::sync lock primitive; parking_lot is the workspace standard"
                    .to_string(),
            });
        }

        // Collect ReadOnlyProtocol impls for rule L4.
        if code.contains("impl") {
            if let Some(type_name) = protocol_impl_target(code) {
                impls.push(ProtocolImpl {
                    type_name,
                    file: rel.clone(),
                    line: lineno,
                    allowed: allowed.contains(&Rule::Conformance),
                });
            }
        }
    }
}

/// Whether `code` contains the cast `needle` as a whole token — i.e. not
/// as a prefix of a wider type name (`as u32` must not fire on
/// `as u32x4`-style identifiers).
fn cast_matches(code: &str, needle: &str) -> bool {
    let mut rest = code;
    while let Some(pos) = rest.find(needle) {
        let after = rest[pos + needle.len()..].chars().next();
        if !after.is_some_and(|c| c.is_alphanumeric() || c == '_') {
            return true;
        }
        rest = &rest[pos + needle.len()..];
    }
    false
}

/// Extracts `Name` from an `impl ... ReadOnlyProtocol for Name<...>` line.
fn protocol_impl_target(code: &str) -> Option<String> {
    let marker = "ReadOnlyProtocol for ";
    let pos = code.find(marker)?;
    let rest = &code[pos + marker.len()..];
    let name: String = rest
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    if name.is_empty() {
        None
    } else {
        Some(name)
    }
}

/// Per-line allow sets, malformed-annotation findings as `(1-based
/// line, message)` pairs, and the per-rule annotation counts (the
/// suppression budget).
#[allow(clippy::type_complexity)]
fn collect_allows(
    lines: &[SplitLine],
) -> (
    Vec<BTreeSet<Rule>>,
    Vec<(usize, String)>,
    Vec<(Rule, usize)>,
) {
    let mut allows: Vec<BTreeSet<Rule>> = vec![BTreeSet::new(); lines.len()];
    let mut malformed = Vec::new();
    let mut counts: Vec<(Rule, usize)> = Vec::new();
    for i in 0..lines.len() {
        // Doc comments (leader-stripped to a leading `/` or `!`) are
        // prose — an allow example in rustdoc is not an annotation.
        if lines[i].comment.starts_with('/') || lines[i].comment.starts_with('!') {
            continue;
        }
        match parse_allow(&lines[i].comment) {
            None => {}
            Some(Err(message)) => malformed.push((i + 1, message)),
            Some(Ok(rules)) => {
                for r in &rules {
                    allows[i].insert(*r);
                    match counts.iter_mut().find(|(cr, _)| cr == r) {
                        Some(slot) => slot.1 += 1,
                        None => counts.push((*r, 1)),
                    }
                }
                // A standalone comment line also covers the line below.
                if lines[i].code.trim().is_empty() && i + 1 < lines.len() {
                    for r in &rules {
                        allows[i + 1].insert(*r);
                    }
                }
            }
        }
    }
    (allows, malformed, counts)
}

/// Parses an allow annotation out of a comment, if present.
///
/// Returns `None` when the comment carries no annotation, `Some(Ok)`
/// with the named rules, or `Some(Err)` with an explanation when the
/// annotation is malformed.
fn parse_allow(comment: &str) -> Option<Result<Vec<Rule>, String>> {
    let marker = "lint: allow(";
    let start = comment.find(marker)?;
    let rest = &comment[start + marker.len()..];
    let Some(close) = rest.find(')') else {
        return Some(Err("unterminated `lint: allow(` annotation".to_string()));
    };
    let mut rules = Vec::new();
    for raw in rest[..close].split(',') {
        let name = raw.trim();
        match Rule::from_allow_name(name) {
            Some(r) => rules.push(r),
            None => {
                return Some(Err(format!(
                    "unknown rule `{name}` in allow annotation (expected one of: \
                     panic, determinism, crate-attrs, conformance, locks, casts, \
                     stdout, hot-alloc, sans-io, lock-order, taint, panic-reach, \
                     state-total, decode-bounds, overflow)"
                )))
            }
        }
    }
    let reason: &str = rest[close + 1..]
        .trim_start_matches(|c: char| c.is_whitespace() || matches!(c, '—' | '–' | '-' | ':'));
    if reason.trim().len() < 3 {
        return Some(Err(
            "allow annotation is missing its mandatory reason".to_string()
        ));
    }
    Some(Ok(rules))
}

/// Renders diagnostics as one JSON object for CI annotation
/// (`cargo xtask lint --json`).
///
/// Schema (stable; checked by `tests/json_schema.rs`):
///
/// ```json
/// {
///   "clean": false,
///   "diagnostics": [
///     {"rule": "L1/panic", "file": "crates/x/src/lib.rs", "line": 7, "message": "..."}
///   ]
/// }
/// ```
pub fn diagnostics_to_json(diagnostics: &[Diagnostic]) -> String {
    use fmt::Write as _;
    let mut out = String::from("{\"clean\":");
    out.push_str(if diagnostics.is_empty() {
        "true"
    } else {
        "false"
    });
    out.push_str(",\"diagnostics\":[");
    for (i, d) in diagnostics.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"rule\":{},\"file\":{},\"line\":{},\"message\":{}}}",
            json_string(d.rule.code()),
            json_string(&d.file.display().to_string()),
            d.line,
            json_string(&d.message)
        );
    }
    out.push_str("]}");
    out
}

/// Renders the full report as one JSON object (`cargo xtask lint
/// --json`).
///
/// Schema (stable; checked by `tests/json_schema.rs`):
///
/// ```json
/// {
///   "clean": true,
///   "files": 42,
///   "timing": {"read_ns": 0, "lex_ns": 0, "index_ns": 0, "rules_ns": 0, "workers": 1},
///   "suppressions": [{"rule": "L0/annotation", "count": 0}],
///   "diagnostics": []
/// }
/// ```
pub fn report_to_json(report: &LintReport) -> String {
    use fmt::Write as _;
    let mut out = String::from("{\"clean\":");
    out.push_str(if report.clean() { "true" } else { "false" });
    let _ = write!(
        out,
        ",\"files\":{},\"timing\":{{\"read_ns\":{},\"lex_ns\":{},\"index_ns\":{},\
         \"rules_ns\":{},\"workers\":{}}}",
        report.files,
        report.timing.read_ns,
        report.timing.lex_ns,
        report.timing.index_ns,
        report.timing.rules_ns,
        report.timing.workers
    );
    out.push_str(",\"suppressions\":[");
    for (i, (rule, count)) in report.suppressions.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"rule\":{},\"count\":{count}}}",
            json_string(rule.code())
        );
    }
    out.push_str("],\"diagnostics\":[");
    for (i, d) in report.diagnostics.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"rule\":{},\"file\":{},\"line\":{},\"message\":{}}}",
            json_string(d.rule.code()),
            json_string(&d.file.display().to_string()),
            d.line,
            json_string(&d.message)
        );
    }
    out.push_str("]}");
    out
}

/// Escapes `s` as a JSON string literal (quotes included).
fn json_string(s: &str) -> String {
    use fmt::Write as _;
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if u32::from(c) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", u32::from(c));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// The file whose inner attributes rule L3 inspects: `src/lib.rs`, or
/// `src/main.rs` for a pure binary crate.
fn crate_root_file(src: &Path) -> Option<PathBuf> {
    let lib = src.join("lib.rs");
    if lib.is_file() {
        return Some(lib);
    }
    let main = src.join("main.rs");
    if main.is_file() {
        return Some(main);
    }
    None
}

pub(crate) fn read_file(path: &Path) -> Result<String, LintError> {
    fs::read_to_string(path).map_err(|source| LintError::Io {
        path: path.to_path_buf(),
        source,
    })
}

fn read_dir_sorted(dir: &Path) -> Result<Vec<PathBuf>, LintError> {
    let entries = fs::read_dir(dir).map_err(|source| LintError::Io {
        path: dir.to_path_buf(),
        source,
    })?;
    let mut paths = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|source| LintError::Io {
            path: dir.to_path_buf(),
            source,
        })?;
        paths.push(entry.path());
    }
    paths.sort();
    Ok(paths)
}

/// Collects `.rs` files under `dir` recursively, in sorted order,
/// skipping any directory named `fixtures` (lint-tool test data).
fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), LintError> {
    for path in read_dir_sorted(dir)? {
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "fixtures") {
                continue;
            }
            walk_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allow_parses_with_reason() {
        let parsed = parse_allow(" lint: allow(panic) — checked above");
        assert_eq!(parsed, Some(Ok(vec![Rule::Panic])));
    }

    #[test]
    fn allow_without_reason_is_malformed() {
        let parsed = parse_allow(" lint: allow(panic)");
        assert!(matches!(parsed, Some(Err(_))));
    }

    #[test]
    fn allow_with_unknown_rule_is_malformed() {
        let parsed = parse_allow(" lint: allow(everything) — because");
        assert!(matches!(parsed, Some(Err(_))));
    }

    #[test]
    fn allow_accepts_comma_separated_rules() {
        let parsed = parse_allow(" lint: allow(panic, locks) — shim layer");
        assert_eq!(parsed, Some(Ok(vec![Rule::Panic, Rule::Locks])));
    }

    #[test]
    fn allow_accepts_the_new_rules() {
        let parsed = parse_allow(" bpush-lint: allow(hot-alloc) — amortized growth");
        assert_eq!(parsed, Some(Ok(vec![Rule::HotAlloc])));
        let parsed = parse_allow(" lint: allow(sans-io, lock-order, taint) — boundary shim");
        assert_eq!(
            parsed,
            Some(Ok(vec![Rule::SansIo, Rule::LockOrder, Rule::Taint]))
        );
    }

    #[test]
    fn rule_parse_accepts_codes_and_allow_names() {
        assert_eq!(Rule::parse("L8/hot-alloc"), Some(Rule::HotAlloc));
        assert_eq!(Rule::parse("hot-alloc"), Some(Rule::HotAlloc));
        assert_eq!(Rule::parse("L0/annotation"), Some(Rule::Annotation));
        assert_eq!(Rule::parse("bogus"), None);
    }

    #[test]
    fn suppression_counts_accumulate() {
        let lines = split_source(
            "fn f() {\n    x(); // lint: allow(panic) — reason one\n    y(); // lint: allow(panic, casts) — reason two\n}\n",
        );
        let (_, malformed, counts) = collect_allows(&lines);
        assert!(malformed.is_empty());
        assert_eq!(counts, vec![(Rule::Panic, 2), (Rule::Casts, 1)]);
    }

    #[test]
    fn impl_target_extraction() {
        assert_eq!(
            protocol_impl_target("impl ReadOnlyProtocol for Sgt {"),
            Some("Sgt".to_string())
        );
        assert_eq!(
            protocol_impl_target(
                "impl<P: ReadOnlyProtocol> ReadOnlyProtocol for Instrumented<P> {"
            ),
            Some("Instrumented".to_string())
        );
        assert_eq!(protocol_impl_target("impl Foo for Bar {"), None);
    }

    #[test]
    fn report_json_shape_is_stable() {
        let report = LintReport {
            diagnostics: Vec::new(),
            files: 3,
            timing: LintTiming {
                read_ns: 1,
                lex_ns: 2,
                index_ns: 5,
                rules_ns: 3,
                workers: 4,
            },
            suppressions: vec![(Rule::Panic, 4)],
            hot_functions: Vec::new(),
            sans_io_files: Vec::new(),
            protocol_enums: Vec::new(),
            decode_files: Vec::new(),
        };
        assert_eq!(
            report_to_json(&report),
            "{\"clean\":true,\"files\":3,\
             \"timing\":{\"read_ns\":1,\"lex_ns\":2,\"index_ns\":5,\
             \"rules_ns\":3,\"workers\":4},\
             \"suppressions\":[{\"rule\":\"L1/panic\",\"count\":4}],\
             \"diagnostics\":[]}"
        );
    }

    #[test]
    fn new_rules_parse_and_report_file_scope() {
        assert_eq!(Rule::parse("L12/panic-reach"), Some(Rule::PanicReach));
        assert_eq!(Rule::parse("state-total"), Some(Rule::StateTotal));
        assert_eq!(Rule::parse("decode-bounds"), Some(Rule::DecodeBounds));
        assert_eq!(Rule::parse("L15/overflow"), Some(Rule::Overflow));
        // `--changed` scoping: site-attributable rules are file-scoped,
        // reachability rules are not.
        assert!(Rule::StateTotal.file_scoped());
        assert!(Rule::DecodeBounds.file_scoped());
        assert!(Rule::Overflow.file_scoped());
        assert!(Rule::Panic.file_scoped());
        assert!(!Rule::PanicReach.file_scoped());
        assert!(!Rule::HotAlloc.file_scoped());
        assert!(!Rule::Conformance.file_scoped());
    }
}
