//! bpush's project-specific static-analysis pass.
//!
//! Run it as `cargo run -p xtask -- lint` (or `cargo xtask lint` via the
//! repo's cargo alias). The pass walks every workspace crate under
//! `crates/` and enforces a small catalog of invariants that generic
//! tooling cannot express:
//!
//! | code | rule |
//! |------|------|
//! | `L1/panic` | no `unwrap`/`expect`/`panic!` family in non-test first-party code |
//! | `L2/determinism` | the protocol crates (`sgraph`, `core`, `client`, `server`, `broadcast`) must stay bit-for-bit deterministic: no ambient RNG, no wall clocks, no hash-ordered collections |
//! | `L3/crate-attrs` | every crate root carries `#![forbid(unsafe_code)]` and `#![deny(missing_docs)]` |
//! | `L4/conformance` | every `ReadOnlyProtocol` impl is exercised by the `bpush-core` conformance battery from some `tests/` file |
//! | `L5/locks` | `parking_lot` is the workspace lock standard; `std::sync` `Mutex`/`RwLock` are rejected |
//! | `L6/casts` | no lossy `as` narrowing of numerics in the deterministic crates; convert with `From`/`TryFrom` instead |
//! | `L7/stdout` | no `println!`/`eprintln!` family in the deterministic crates; observations go through the `bpush-obs` sink |
//! | `L0/annotation` | the escape-hatch annotation itself must be well-formed |
//!
//! # Escape hatch
//!
//! A violation can be waived in place with a line comment of the form
//! `lint: allow(panic) — reason the construct is sound here`, either at
//! the end of the offending line or alone on the line directly above it.
//! The rule name goes in the parentheses (`panic`, `determinism`,
//! `crate-attrs`, `conformance`, `locks`, `casts`, or `stdout`; comma-separated
//! for more than one) and the trailing reason is mandatory — an annotation with
//! no reason, or naming an unknown rule, is itself reported as
//! `L0/annotation`.
//!
//! # How matching works
//!
//! Sources are scanned line by line after a light lexical pass that
//! strips comments and blanks out the *contents* of string literals
//! (delimiters are kept). Rules therefore never fire on prose, doc-test
//! examples, or needles quoted inside strings — which is also what lets
//! this crate lint itself. `#[cfg(test)]` regions are excluded by brace
//! counting on the stripped text.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod bench;
pub mod trace;

use std::collections::BTreeSet;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Identifier of one rule in the lint catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// `L0/annotation`: an escape-hatch annotation is malformed.
    Annotation,
    /// `L1/panic`: panic path in non-test first-party code.
    Panic,
    /// `L2/determinism`: non-deterministic construct in a protocol crate.
    Determinism,
    /// `L3/crate-attrs`: crate root is missing a mandatory attribute.
    CrateAttrs,
    /// `L4/conformance`: a `ReadOnlyProtocol` impl escapes the battery.
    Conformance,
    /// `L5/locks`: `std::sync` lock where `parking_lot` is the standard.
    Locks,
    /// `L6/casts`: lossy `as` numeric cast in a deterministic crate.
    Casts,
    /// `L7/stdout`: `println!`-family output in a deterministic crate.
    Stdout,
}

impl Rule {
    /// Stable diagnostic code printed in front of every finding.
    pub fn code(self) -> &'static str {
        match self {
            Rule::Annotation => "L0/annotation",
            Rule::Panic => "L1/panic",
            Rule::Determinism => "L2/determinism",
            Rule::CrateAttrs => "L3/crate-attrs",
            Rule::Conformance => "L4/conformance",
            Rule::Locks => "L5/locks",
            Rule::Casts => "L6/casts",
            Rule::Stdout => "L7/stdout",
        }
    }

    /// Name accepted inside the parentheses of an allow annotation.
    pub fn allow_name(self) -> &'static str {
        match self {
            Rule::Annotation => "annotation",
            Rule::Panic => "panic",
            Rule::Determinism => "determinism",
            Rule::CrateAttrs => "crate-attrs",
            Rule::Conformance => "conformance",
            Rule::Locks => "locks",
            Rule::Casts => "casts",
            Rule::Stdout => "stdout",
        }
    }

    fn from_allow_name(name: &str) -> Option<Rule> {
        match name {
            "panic" => Some(Rule::Panic),
            "determinism" => Some(Rule::Determinism),
            "crate-attrs" => Some(Rule::CrateAttrs),
            "conformance" => Some(Rule::Conformance),
            "locks" => Some(Rule::Locks),
            "casts" => Some(Rule::Casts),
            "stdout" => Some(Rule::Stdout),
            _ => None,
        }
    }
}

/// One finding: a rule violated at a file and line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Which rule fired.
    pub rule: Rule,
    /// Path of the offending file, relative to the workspace root.
    pub file: PathBuf,
    /// 1-based line number of the finding.
    pub line: usize,
    /// Human-readable explanation with the suggested fix.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {}:{} — {}",
            self.rule.code(),
            self.file.display(),
            self.line,
            self.message
        )
    }
}

/// Failure to *run* the pass (I/O trouble, not a workspace, ...), as
/// opposed to findings, which are [`Diagnostic`]s.
#[derive(Debug)]
pub enum LintError {
    /// Reading a file or directory failed.
    Io {
        /// The path that could not be read.
        path: PathBuf,
        /// The underlying error.
        source: io::Error,
    },
    /// The given root has no `crates/` directory with any crates in it.
    NotAWorkspace(PathBuf),
}

impl fmt::Display for LintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LintError::Io { path, source } => {
                write!(f, "cannot read {}: {source}", path.display())
            }
            LintError::NotAWorkspace(root) => write!(
                f,
                "{} does not look like the workspace root (no crates/*/Cargo.toml)",
                root.display()
            ),
        }
    }
}

impl std::error::Error for LintError {}

/// Crates whose sources must be bit-for-bit deterministic (rule L2):
/// everything on the simulated protocol path, identified by directory
/// name under `crates/`.
pub const DETERMINISTIC_CRATES: &[&str] = &[
    "sgraph",
    "core",
    "client",
    "server",
    "broadcast",
    "mc",
    "obs",
];

const PANIC_NEEDLES: &[&str] = &[
    ".unwrap()",
    ".expect(",
    "panic!(",
    "unreachable!(",
    "todo!(",
    "unimplemented!(",
];

const DETERMINISM_NEEDLES: &[&str] = &[
    "thread_rng",
    "SystemTime::now",
    "Instant::now",
    "HashMap",
    "HashSet",
];

/// Targets for which an `as` cast can silently drop bits (or, for
/// `f32`, precision). Widening targets (`u64`, `i64`, `usize`, `f64`)
/// are exempt: on every supported platform they cannot lose integer
/// information that the protocol crates put into them.
const NARROWING_CAST_NEEDLES: &[&str] = &[
    " as u8", " as u16", " as u32", " as i8", " as i16", " as i32", " as f32",
];

/// Longest-first so the reported needle is the macro actually written
/// (`println!(` is a substring of `eprintln!(`).
const STDOUT_NEEDLES: &[&str] = &["eprintln!(", "println!(", "eprint!(", "print!("];

const FORBID_UNSAFE: &str = "#![forbid(unsafe_code)]";
const DENY_MISSING_DOCS: &str = "#![deny(missing_docs)]";

/// Lists the workspace crates under `root/crates`, sorted by name.
///
/// # Errors
/// Fails if the `crates/` directory cannot be read, or contains no
/// crate (a directory with a `Cargo.toml`).
pub fn workspace_crates(root: &Path) -> Result<Vec<(String, PathBuf)>, LintError> {
    let crates_dir = root.join("crates");
    let mut found = Vec::new();
    for entry in read_dir_sorted(&crates_dir)? {
        if entry.join("Cargo.toml").is_file() {
            let name = entry
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            found.push((name, entry));
        }
    }
    if found.is_empty() {
        return Err(LintError::NotAWorkspace(root.to_path_buf()));
    }
    Ok(found)
}

/// Runs the whole catalog over every crate under `root/crates`,
/// returning the findings sorted by file, line, then rule.
///
/// An empty result means the workspace is clean.
///
/// # Errors
/// Propagates I/O failures; findings are *not* errors.
pub fn lint_workspace(root: &Path) -> Result<Vec<Diagnostic>, LintError> {
    let crates = workspace_crates(root)?;
    let mut diags: Vec<Diagnostic> = Vec::new();
    let mut impls: Vec<ProtocolImpl> = Vec::new();
    let mut evidence: Vec<String> = Vec::new();

    for (name, path) in &crates {
        let src = path.join("src");
        if src.is_dir() {
            let mut files = Vec::new();
            walk_rs(&src, &mut files)?;
            let root_file = crate_root_file(&src);
            for file in &files {
                lint_src_file(LintCtx {
                    root,
                    crate_name: name,
                    file,
                    is_crate_root: Some(file.as_path()) == root_file.as_deref(),
                    diags: &mut diags,
                    impls: &mut impls,
                })?;
            }
        }
        let tests = path.join("tests");
        if tests.is_dir() {
            let mut files = Vec::new();
            walk_rs(&tests, &mut files)?;
            for file in &files {
                evidence.push(read_file(file)?);
            }
        }
    }

    // Rule L4: every impl needs a tests/ file naming the type alongside
    // the conformance battery.
    for imp in &impls {
        if imp.allowed {
            continue;
        }
        let covered = evidence
            .iter()
            .any(|text| text.contains(&imp.type_name) && text.contains("conformance"));
        if !covered {
            diags.push(Diagnostic {
                rule: Rule::Conformance,
                file: imp.file.clone(),
                line: imp.line,
                message: format!(
                    "`{}` implements ReadOnlyProtocol but no tests/ file runs it \
                     through the bpush-core conformance battery",
                    imp.type_name
                ),
            });
        }
    }

    diags.sort_by(|a, b| {
        (&a.file, a.line, a.rule, &a.message).cmp(&(&b.file, b.line, b.rule, &b.message))
    });
    Ok(diags)
}

/// A `ReadOnlyProtocol` impl discovered in non-test code.
struct ProtocolImpl {
    type_name: String,
    file: PathBuf,
    line: usize,
    allowed: bool,
}

struct LintCtx<'a> {
    root: &'a Path,
    crate_name: &'a str,
    file: &'a Path,
    is_crate_root: bool,
    diags: &'a mut Vec<Diagnostic>,
    impls: &'a mut Vec<ProtocolImpl>,
}

fn lint_src_file(ctx: LintCtx<'_>) -> Result<(), LintError> {
    let text = read_file(ctx.file)?;
    let lines = split_source(&text);
    let mask = test_mask(&lines);
    let rel = ctx
        .file
        .strip_prefix(ctx.root)
        .unwrap_or(ctx.file)
        .to_path_buf();

    let (allows, malformed) = collect_allows(&lines);
    for (line, message) in malformed {
        ctx.diags.push(Diagnostic {
            rule: Rule::Annotation,
            file: rel.clone(),
            line,
            message,
        });
    }

    // Rule L3: mandatory crate-root attributes.
    if ctx.is_crate_root {
        for attr in [FORBID_UNSAFE, DENY_MISSING_DOCS] {
            let present = lines.iter().any(|l| l.code.contains(attr));
            if !present {
                ctx.diags.push(Diagnostic {
                    rule: Rule::CrateAttrs,
                    file: rel.clone(),
                    line: 1,
                    message: format!("crate root is missing `{attr}`"),
                });
            }
        }
    }

    let deterministic = DETERMINISTIC_CRATES.contains(&ctx.crate_name);

    for (idx, line) in lines.iter().enumerate() {
        if mask[idx] {
            continue;
        }
        let lineno = idx + 1;
        let code = &line.code;
        let allowed = &allows[idx];

        // Rule L1: panic-freedom.
        if !allowed.contains(&Rule::Panic) {
            if let Some(needle) = PANIC_NEEDLES.iter().find(|n| code.contains(**n)) {
                ctx.diags.push(Diagnostic {
                    rule: Rule::Panic,
                    file: rel.clone(),
                    line: lineno,
                    message: format!(
                        "panic path `{}` in non-test code; return a `Result` via \
                         bpush_types::error or annotate with a reason",
                        needle.trim_end_matches('(')
                    ),
                });
            }
        }

        // Rule L2: determinism in the protocol crates.
        if deterministic && !allowed.contains(&Rule::Determinism) {
            if let Some(needle) = DETERMINISM_NEEDLES.iter().find(|n| code.contains(**n)) {
                ctx.diags.push(Diagnostic {
                    rule: Rule::Determinism,
                    file: rel.clone(),
                    line: lineno,
                    message: format!(
                        "non-deterministic construct `{needle}` in deterministic crate \
                         `{}`; use seeded rand and BTree collections",
                        ctx.crate_name
                    ),
                });
            }
        }

        // Rule L6: lossy numeric casts in the deterministic crates.
        if deterministic && !allowed.contains(&Rule::Casts) {
            if let Some(needle) = NARROWING_CAST_NEEDLES
                .iter()
                .find(|n| cast_matches(code, n))
            {
                ctx.diags.push(Diagnostic {
                    rule: Rule::Casts,
                    file: rel.clone(),
                    line: lineno,
                    message: format!(
                        "lossy `{}` cast in deterministic crate `{}`; convert with \
                         `From`/`TryFrom` or annotate with a reason",
                        needle.trim_start(),
                        ctx.crate_name
                    ),
                });
            }
        }

        // Rule L7: no direct terminal output in the deterministic
        // crates — observations belong in the bpush-obs sink, where
        // they stay replayable and cost nothing when disabled.
        if deterministic && !allowed.contains(&Rule::Stdout) {
            if let Some(needle) = STDOUT_NEEDLES.iter().find(|n| code.contains(**n)) {
                ctx.diags.push(Diagnostic {
                    rule: Rule::Stdout,
                    file: rel.clone(),
                    line: lineno,
                    message: format!(
                        "`{}` in deterministic crate `{}`; emit through the bpush-obs \
                         sink (or annotate with a reason)",
                        needle.trim_end_matches('('),
                        ctx.crate_name
                    ),
                });
            }
        }

        // Rule L5: std::sync locks.
        if !allowed.contains(&Rule::Locks)
            && code.contains("std::sync")
            && (code.contains("Mutex") || code.contains("RwLock"))
        {
            ctx.diags.push(Diagnostic {
                rule: Rule::Locks,
                file: rel.clone(),
                line: lineno,
                message: "std::sync lock primitive; parking_lot is the workspace standard"
                    .to_string(),
            });
        }

        // Collect ReadOnlyProtocol impls for rule L4.
        if code.contains("impl") {
            if let Some(type_name) = protocol_impl_target(code) {
                ctx.impls.push(ProtocolImpl {
                    type_name,
                    file: rel.clone(),
                    line: lineno,
                    allowed: allowed.contains(&Rule::Conformance),
                });
            }
        }
    }
    Ok(())
}

/// Whether `code` contains the cast `needle` as a whole token — i.e. not
/// as a prefix of a wider type name (`as u32` must not fire on
/// `as u32x4`-style identifiers).
fn cast_matches(code: &str, needle: &str) -> bool {
    let mut rest = code;
    while let Some(pos) = rest.find(needle) {
        let after = rest[pos + needle.len()..].chars().next();
        if !after.is_some_and(|c| c.is_alphanumeric() || c == '_') {
            return true;
        }
        rest = &rest[pos + needle.len()..];
    }
    false
}

/// Extracts `Name` from an `impl ... ReadOnlyProtocol for Name<...>` line.
fn protocol_impl_target(code: &str) -> Option<String> {
    let marker = "ReadOnlyProtocol for ";
    let pos = code.find(marker)?;
    let rest = &code[pos + marker.len()..];
    let name: String = rest
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    if name.is_empty() {
        None
    } else {
        Some(name)
    }
}

/// One physical source line after the lexical pass: executable text in
/// `code` (string contents blanked), comment text in `comment`.
#[derive(Debug, Default, Clone)]
struct SplitLine {
    code: String,
    comment: String,
}

/// Splits a source file into per-line (code, comment) pairs.
///
/// String literal *contents* are replaced by spaces so that needles
/// quoted in strings never match; delimiters are preserved. Line and
/// block comments (nesting included) land in `comment`. Char literals
/// are blanked like strings; lifetimes pass through untouched.
fn split_source(text: &str) -> Vec<SplitLine> {
    enum St {
        Code,
        LineComment,
        BlockComment(u32),
        Str,
        RawStr(usize),
    }
    let chars: Vec<char> = text.chars().collect();
    let mut out = Vec::new();
    let mut cur = SplitLine::default();
    let mut st = St::Code;
    let mut prev_code: Option<char> = None;
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            out.push(std::mem::take(&mut cur));
            if matches!(st, St::LineComment) {
                st = St::Code;
            }
            i += 1;
            continue;
        }
        match st {
            St::Code => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('/') {
                    st = St::LineComment;
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    st = St::BlockComment(1);
                    i += 2;
                } else if c == '"' {
                    cur.code.push('"');
                    prev_code = Some('"');
                    st = St::Str;
                    i += 1;
                } else if c == 'r'
                    && matches!(next, Some('"') | Some('#'))
                    && !prev_code.is_some_and(|p| p.is_alphanumeric() || p == '_')
                {
                    // Possible raw string: r"..." or r#"..."#.
                    let mut hashes = 0;
                    while chars.get(i + 1 + hashes) == Some(&'#') {
                        hashes += 1;
                    }
                    if chars.get(i + 1 + hashes) == Some(&'"') {
                        cur.code.push('r');
                        cur.code.push('"');
                        prev_code = Some('"');
                        st = St::RawStr(hashes);
                        i += 2 + hashes;
                    } else {
                        cur.code.push(c);
                        prev_code = Some(c);
                        i += 1;
                    }
                } else if c == 'b' && next == Some('"') {
                    cur.code.push('b');
                    cur.code.push('"');
                    prev_code = Some('"');
                    st = St::Str;
                    i += 2;
                } else if c == '\'' || (c == 'b' && next == Some('\'')) {
                    let start = if c == 'b' { i + 1 } else { i };
                    let consumed = char_literal_len(&chars, start);
                    if consumed > 0 {
                        cur.code.push('\'');
                        cur.code.push('\'');
                        prev_code = Some('\'');
                        i = start + consumed;
                    } else {
                        // A lifetime (or a lone `b`): emit verbatim.
                        cur.code.push(c);
                        prev_code = Some(c);
                        i += 1;
                    }
                } else {
                    cur.code.push(c);
                    if !c.is_whitespace() {
                        prev_code = Some(c);
                    }
                    i += 1;
                }
            }
            St::LineComment => {
                cur.comment.push(c);
                i += 1;
            }
            St::BlockComment(depth) => {
                let next = chars.get(i + 1).copied();
                if c == '*' && next == Some('/') {
                    st = if depth == 1 {
                        St::Code
                    } else {
                        St::BlockComment(depth - 1)
                    };
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    st = St::BlockComment(depth + 1);
                    i += 2;
                } else {
                    cur.comment.push(c);
                    i += 1;
                }
            }
            St::Str => {
                if c == '\\' {
                    // Skip the escaped char unless it is the newline itself.
                    if chars.get(i + 1) == Some(&'\n') {
                        i += 1;
                    } else {
                        cur.code.push(' ');
                        i += 2;
                    }
                } else if c == '"' {
                    cur.code.push('"');
                    st = St::Code;
                    i += 1;
                } else {
                    cur.code.push(' ');
                    i += 1;
                }
            }
            St::RawStr(hashes) => {
                if c == '"' && (0..hashes).all(|k| chars.get(i + 1 + k) == Some(&'#')) {
                    cur.code.push('"');
                    st = St::Code;
                    i += 1 + hashes;
                } else {
                    cur.code.push(' ');
                    i += 1;
                }
            }
        }
    }
    // A trailing newline already flushed the last line; only a file
    // without one still has pending content.
    if !text.is_empty() && !text.ends_with('\n') {
        out.push(cur);
    }
    out
}

/// Length in chars of the char literal starting at `chars[start]`
/// (which must be `'`), or 0 if it is a lifetime instead.
fn char_literal_len(chars: &[char], start: usize) -> usize {
    if chars.get(start) != Some(&'\'') {
        return 0;
    }
    match chars.get(start + 1) {
        Some('\\') => {
            // Escape: scan (bounded) for the closing quote.
            for len in 3..=12 {
                match chars.get(start + len - 1) {
                    Some('\'') => return len,
                    Some('\n') | None => return 0,
                    _ => {}
                }
            }
            0
        }
        Some(_) if chars.get(start + 2) == Some(&'\'') => 3,
        _ => 0,
    }
}

/// Marks the lines belonging to `#[cfg(test)]` items (the attribute
/// line through the matching close brace, or the terminating `;` for
/// brace-less items).
fn test_mask(lines: &[SplitLine]) -> Vec<bool> {
    let mut mask = vec![false; lines.len()];
    let mut i = 0;
    while i < lines.len() {
        let Some(pos) = lines[i].code.find("cfg(test)") else {
            i += 1;
            continue;
        };
        let mut depth: i64 = 0;
        let mut opened = false;
        let mut j = i;
        let mut col = pos;
        'region: while j < lines.len() {
            mask[j] = true;
            for c in lines[j].code.chars().skip(col) {
                match c {
                    '{' => {
                        depth += 1;
                        opened = true;
                    }
                    '}' => {
                        depth -= 1;
                        if opened && depth <= 0 {
                            break 'region;
                        }
                    }
                    ';' if !opened && depth == 0 => break 'region,
                    _ => {}
                }
            }
            j += 1;
            col = 0;
        }
        i = j + 1;
    }
    mask
}

/// Per-line allow sets plus malformed-annotation findings as
/// `(1-based line, message)` pairs.
#[allow(clippy::type_complexity)]
fn collect_allows(lines: &[SplitLine]) -> (Vec<BTreeSet<Rule>>, Vec<(usize, String)>) {
    let mut allows: Vec<BTreeSet<Rule>> = vec![BTreeSet::new(); lines.len()];
    let mut malformed = Vec::new();
    for i in 0..lines.len() {
        match parse_allow(&lines[i].comment) {
            None => {}
            Some(Err(message)) => malformed.push((i + 1, message)),
            Some(Ok(rules)) => {
                for r in &rules {
                    allows[i].insert(*r);
                }
                // A standalone comment line also covers the line below.
                if lines[i].code.trim().is_empty() && i + 1 < lines.len() {
                    for r in &rules {
                        allows[i + 1].insert(*r);
                    }
                }
            }
        }
    }
    (allows, malformed)
}

/// Parses an allow annotation out of a comment, if present.
///
/// Returns `None` when the comment carries no annotation, `Some(Ok)`
/// with the named rules, or `Some(Err)` with an explanation when the
/// annotation is malformed.
fn parse_allow(comment: &str) -> Option<Result<Vec<Rule>, String>> {
    let marker = "lint: allow(";
    let start = comment.find(marker)?;
    let rest = &comment[start + marker.len()..];
    let Some(close) = rest.find(')') else {
        return Some(Err("unterminated `lint: allow(` annotation".to_string()));
    };
    let mut rules = Vec::new();
    for raw in rest[..close].split(',') {
        let name = raw.trim();
        match Rule::from_allow_name(name) {
            Some(r) => rules.push(r),
            None => {
                return Some(Err(format!(
                    "unknown rule `{name}` in allow annotation (expected one of: \
                     panic, determinism, crate-attrs, conformance, locks, casts, stdout)"
                )))
            }
        }
    }
    let reason: &str = rest[close + 1..]
        .trim_start_matches(|c: char| c.is_whitespace() || matches!(c, '—' | '–' | '-' | ':'));
    if reason.trim().len() < 3 {
        return Some(Err(
            "allow annotation is missing its mandatory reason".to_string()
        ));
    }
    Some(Ok(rules))
}

/// Renders diagnostics as one JSON object for CI annotation
/// (`cargo xtask lint --json`).
///
/// Schema (stable; checked by `tests/json_schema.rs`):
///
/// ```json
/// {
///   "clean": false,
///   "diagnostics": [
///     {"rule": "L1/panic", "file": "crates/x/src/lib.rs", "line": 7, "message": "..."}
///   ]
/// }
/// ```
pub fn diagnostics_to_json(diagnostics: &[Diagnostic]) -> String {
    use fmt::Write as _;
    let mut out = String::from("{\"clean\":");
    out.push_str(if diagnostics.is_empty() {
        "true"
    } else {
        "false"
    });
    out.push_str(",\"diagnostics\":[");
    for (i, d) in diagnostics.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"rule\":{},\"file\":{},\"line\":{},\"message\":{}}}",
            json_string(d.rule.code()),
            json_string(&d.file.display().to_string()),
            d.line,
            json_string(&d.message)
        );
    }
    out.push_str("]}");
    out
}

/// Escapes `s` as a JSON string literal (quotes included).
fn json_string(s: &str) -> String {
    use fmt::Write as _;
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if u32::from(c) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", u32::from(c));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// The file whose inner attributes rule L3 inspects: `src/lib.rs`, or
/// `src/main.rs` for a pure binary crate.
fn crate_root_file(src: &Path) -> Option<PathBuf> {
    let lib = src.join("lib.rs");
    if lib.is_file() {
        return Some(lib);
    }
    let main = src.join("main.rs");
    if main.is_file() {
        return Some(main);
    }
    None
}

fn read_file(path: &Path) -> Result<String, LintError> {
    fs::read_to_string(path).map_err(|source| LintError::Io {
        path: path.to_path_buf(),
        source,
    })
}

fn read_dir_sorted(dir: &Path) -> Result<Vec<PathBuf>, LintError> {
    let entries = fs::read_dir(dir).map_err(|source| LintError::Io {
        path: dir.to_path_buf(),
        source,
    })?;
    let mut paths = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|source| LintError::Io {
            path: dir.to_path_buf(),
            source,
        })?;
        paths.push(entry.path());
    }
    paths.sort();
    Ok(paths)
}

/// Collects `.rs` files under `dir` recursively, in sorted order,
/// skipping any directory named `fixtures` (lint-tool test data).
fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), LintError> {
    for path in read_dir_sorted(dir)? {
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "fixtures") {
                continue;
            }
            walk_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes(src: &str) -> Vec<String> {
        split_source(src).into_iter().map(|l| l.code).collect()
    }

    #[test]
    fn strings_are_blanked_but_delimited() {
        let lines = codes("let x = \"panic!(boom)\";\n");
        assert!(lines[0].contains('"'));
        assert!(!lines[0].contains("panic!("));
    }

    #[test]
    fn raw_strings_are_blanked() {
        let lines = codes("let x = r#\"a.unwrap()b\"#;\n");
        assert!(!lines[0].contains(".unwrap()"));
        assert!(lines[0].ends_with(';'));
    }

    #[test]
    fn comments_are_split_out() {
        let split = split_source("let x = 1; // .unwrap() in prose\n/* block\nspans */ let y;\n");
        assert!(!split[0].code.contains(".unwrap()"));
        assert!(split[0].comment.contains(".unwrap()"));
        assert!(split[1].comment.contains("block"));
        assert!(split[2].code.contains("let y"));
    }

    #[test]
    fn doc_comments_are_comments() {
        let split = split_source("/// asserts: assert!(x > 0)\nfn f() {}\n");
        assert!(!split[0].code.contains("assert!("));
        assert!(split[1].code.contains("fn f"));
    }

    #[test]
    fn lifetimes_survive_and_char_literals_blank() {
        let lines = codes("fn f<'a>(x: &'a str) -> char { '\\'' }\n");
        assert!(lines[0].contains("<'a>"));
        assert!(lines[0].contains("&'a str"));
        // The char literal body is blanked to a quote pair.
        assert!(lines[0].contains("''"));
    }

    #[test]
    fn multiline_strings_keep_line_count() {
        let src = "let s = \"line one\nline two\";\nlet t = 5;\n";
        let lines = codes(src);
        assert_eq!(lines.len(), 3);
        assert!(lines[2].contains("let t"));
    }

    #[test]
    fn cfg_test_mod_is_masked() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn inner() {}\n}\nfn after() {}\n";
        let lines = split_source(src);
        let mask = test_mask(&lines);
        assert_eq!(mask, vec![false, true, true, true, true, false]);
    }

    #[test]
    fn cfg_test_single_item_ends_at_semicolon() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn live() {}\n";
        let lines = split_source(src);
        let mask = test_mask(&lines);
        assert_eq!(mask, vec![true, true, false]);
    }

    #[test]
    fn cfg_not_test_is_not_masked() {
        let src = "#[cfg(not(test))]\nfn live() {}\n";
        let lines = split_source(src);
        let mask = test_mask(&lines);
        assert_eq!(mask, vec![false, false]);
    }

    #[test]
    fn allow_parses_with_reason() {
        let parsed = parse_allow(" lint: allow(panic) — checked above");
        assert_eq!(parsed, Some(Ok(vec![Rule::Panic])));
    }

    #[test]
    fn allow_without_reason_is_malformed() {
        let parsed = parse_allow(" lint: allow(panic)");
        assert!(matches!(parsed, Some(Err(_))));
    }

    #[test]
    fn allow_with_unknown_rule_is_malformed() {
        let parsed = parse_allow(" lint: allow(everything) — because");
        assert!(matches!(parsed, Some(Err(_))));
    }

    #[test]
    fn allow_accepts_comma_separated_rules() {
        let parsed = parse_allow(" lint: allow(panic, locks) — shim layer");
        assert_eq!(parsed, Some(Ok(vec![Rule::Panic, Rule::Locks])));
    }

    #[test]
    fn impl_target_extraction() {
        assert_eq!(
            protocol_impl_target("impl ReadOnlyProtocol for Sgt {"),
            Some("Sgt".to_string())
        );
        assert_eq!(
            protocol_impl_target(
                "impl<P: ReadOnlyProtocol> ReadOnlyProtocol for Instrumented<P> {"
            ),
            Some("Instrumented".to_string())
        );
        assert_eq!(protocol_impl_target("impl Foo for Bar {"), None);
    }
}
