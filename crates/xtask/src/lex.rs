//! Lexical layer of the lint engine: comment/string splitting and the
//! token stream the interprocedural rules (L8–L11) run on.
//!
//! Every source file is read and lexed exactly **once** per lint run
//! (see [`crate::lint_workspace_report`]): the per-line [`SplitLine`]
//! view feeds the line-oriented rules L0–L7, and [`lex_tokens`] derives
//! the identifier/punctuation token stream — with line spans — that the
//! item indexer ([`crate::items`]) and call-graph builder
//! ([`crate::callgraph`]) consume. String literal *contents* are blanked
//! before tokenization, so a needle quoted in a string can never produce
//! a token.

/// One physical source line after the lexical pass: executable text in
/// `code` (string contents blanked), comment text in `comment`.
#[derive(Debug, Default, Clone)]
pub struct SplitLine {
    /// Executable text with string/char literal contents blanked.
    pub code: String,
    /// Comment text (line, block, and doc comments).
    pub comment: String,
}

/// Splits a source file into per-line (code, comment) pairs.
///
/// String literal *contents* are replaced by spaces so that needles
/// quoted in strings never match; delimiters are preserved. Line and
/// block comments (nesting included) land in `comment`. Char literals
/// are blanked like strings; lifetimes pass through untouched.
pub fn split_source(text: &str) -> Vec<SplitLine> {
    enum St {
        Code,
        LineComment,
        BlockComment(u32),
        Str,
        RawStr(usize),
    }
    let chars: Vec<char> = text.chars().collect();
    let mut out = Vec::new();
    let mut cur = SplitLine::default();
    let mut st = St::Code;
    let mut prev_code: Option<char> = None;
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            out.push(std::mem::take(&mut cur));
            if matches!(st, St::LineComment) {
                st = St::Code;
            }
            i += 1;
            continue;
        }
        match st {
            St::Code => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('/') {
                    st = St::LineComment;
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    st = St::BlockComment(1);
                    i += 2;
                } else if c == '"' {
                    cur.code.push('"');
                    prev_code = Some('"');
                    st = St::Str;
                    i += 1;
                } else if c == 'r'
                    && matches!(next, Some('"') | Some('#'))
                    && !prev_code.is_some_and(|p| p.is_alphanumeric() || p == '_')
                {
                    // Possible raw string: r"..." or r#"..."#.
                    let mut hashes = 0;
                    while chars.get(i + 1 + hashes) == Some(&'#') {
                        hashes += 1;
                    }
                    if chars.get(i + 1 + hashes) == Some(&'"') {
                        cur.code.push('r');
                        cur.code.push('"');
                        prev_code = Some('"');
                        st = St::RawStr(hashes);
                        i += 2 + hashes;
                    } else {
                        cur.code.push(c);
                        prev_code = Some(c);
                        i += 1;
                    }
                } else if c == 'b' && next == Some('"') {
                    cur.code.push('b');
                    cur.code.push('"');
                    prev_code = Some('"');
                    st = St::Str;
                    i += 2;
                } else if c == '\'' || (c == 'b' && next == Some('\'')) {
                    let start = if c == 'b' { i + 1 } else { i };
                    let consumed = char_literal_len(&chars, start);
                    if consumed > 0 {
                        cur.code.push('\'');
                        cur.code.push('\'');
                        prev_code = Some('\'');
                        i = start + consumed;
                    } else {
                        // A lifetime (or a lone `b`): emit verbatim.
                        cur.code.push(c);
                        prev_code = Some(c);
                        i += 1;
                    }
                } else {
                    cur.code.push(c);
                    if !c.is_whitespace() {
                        prev_code = Some(c);
                    }
                    i += 1;
                }
            }
            St::LineComment => {
                cur.comment.push(c);
                i += 1;
            }
            St::BlockComment(depth) => {
                let next = chars.get(i + 1).copied();
                if c == '*' && next == Some('/') {
                    st = if depth == 1 {
                        St::Code
                    } else {
                        St::BlockComment(depth - 1)
                    };
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    st = St::BlockComment(depth + 1);
                    i += 2;
                } else {
                    cur.comment.push(c);
                    i += 1;
                }
            }
            St::Str => {
                if c == '\\' {
                    // Skip the escaped char unless it is the newline itself.
                    if chars.get(i + 1) == Some(&'\n') {
                        i += 1;
                    } else {
                        cur.code.push(' ');
                        i += 2;
                    }
                } else if c == '"' {
                    cur.code.push('"');
                    st = St::Code;
                    i += 1;
                } else {
                    cur.code.push(' ');
                    i += 1;
                }
            }
            St::RawStr(hashes) => {
                if c == '"' && (0..hashes).all(|k| chars.get(i + 1 + k) == Some(&'#')) {
                    cur.code.push('"');
                    st = St::Code;
                    i += 1 + hashes;
                } else {
                    cur.code.push(' ');
                    i += 1;
                }
            }
        }
    }
    // A trailing newline already flushed the last line; only a file
    // without one still has pending content.
    if !text.is_empty() && !text.ends_with('\n') {
        out.push(cur);
    }
    out
}

/// Length in chars of the char literal starting at `chars[start]`
/// (which must be `'`), or 0 if it is a lifetime instead.
fn char_literal_len(chars: &[char], start: usize) -> usize {
    if chars.get(start) != Some(&'\'') {
        return 0;
    }
    match chars.get(start + 1) {
        Some('\\') => {
            // Escape: scan (bounded) for the closing quote.
            for len in 3..=12 {
                match chars.get(start + len - 1) {
                    Some('\'') => return len,
                    Some('\n') | None => return 0,
                    _ => {}
                }
            }
            0
        }
        Some(_) if chars.get(start + 2) == Some(&'\'') => 3,
        _ => 0,
    }
}

/// Marks the lines belonging to `#[cfg(test)]` items (the attribute
/// line through the matching close brace, or the terminating `;` for
/// brace-less items).
pub fn test_mask(lines: &[SplitLine]) -> Vec<bool> {
    let mut mask = vec![false; lines.len()];
    let mut i = 0;
    while i < lines.len() {
        let Some(pos) = lines[i].code.find("cfg(test)") else {
            i += 1;
            continue;
        };
        let mut depth: i64 = 0;
        let mut opened = false;
        let mut j = i;
        let mut col = pos;
        'region: while j < lines.len() {
            mask[j] = true;
            for c in lines[j].code.chars().skip(col) {
                match c {
                    '{' => {
                        depth += 1;
                        opened = true;
                    }
                    '}' => {
                        depth -= 1;
                        if opened && depth <= 0 {
                            break 'region;
                        }
                    }
                    ';' if !opened && depth == 0 => break 'region,
                    _ => {}
                }
            }
            j += 1;
            col = 0;
        }
        i = j + 1;
    }
    mask
}

/// What a token is, as far as the lint rules need to know.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword.
    Ident,
    /// Punctuation. Multi-character operators that matter structurally
    /// (`::`, `->`, `=>`) are fused into one token; everything else is a
    /// single character.
    Punct,
    /// A literal: number, (blanked) string, or (blanked) char.
    Literal,
    /// A lifetime such as `'a` (kept distinct so it never looks like a
    /// char literal or identifier).
    Lifetime,
}

/// One token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Token kind.
    pub kind: TokenKind,
    /// The token text. Blanked string literals shrink to `""`, blanked
    /// char literals to `''`.
    pub text: String,
    /// 1-based line the token starts on.
    pub line: usize,
}

impl Token {
    /// Whether this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == s
    }

    /// Whether this token is the punctuation `s`.
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokenKind::Punct && self.text == s
    }
}

/// Tokenizes the already-split lines into a single stream with line
/// spans. Runs on the blanked `code` text, so string/char contents and
/// comments are guaranteed token-free.
pub fn lex_tokens(lines: &[SplitLine]) -> Vec<Token> {
    let mut out = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        let lineno = idx + 1;
        let chars: Vec<char> = line.code.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            let c = chars[i];
            if c.is_whitespace() {
                i += 1;
            } else if c.is_alphabetic() || c == '_' {
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                out.push(Token {
                    kind: TokenKind::Ident,
                    text: chars[start..i].iter().collect(),
                    line: lineno,
                });
            } else if c.is_ascii_digit() {
                let start = i;
                while i < chars.len()
                    && (chars[i].is_alphanumeric() || chars[i] == '_' || chars[i] == '.')
                {
                    // `1.0` stays one literal; `1..2` must not swallow
                    // the range operator.
                    if chars[i] == '.' && chars.get(i + 1) == Some(&'.') {
                        break;
                    }
                    i += 1;
                }
                out.push(Token {
                    kind: TokenKind::Literal,
                    text: chars[start..i].iter().collect(),
                    line: lineno,
                });
            } else if c == '"' {
                // A blanked string literal: scan to the closing quote
                // (the splitter guarantees contents are spaces).
                let mut j = i + 1;
                while j < chars.len() && chars[j] != '"' {
                    j += 1;
                }
                out.push(Token {
                    kind: TokenKind::Literal,
                    text: "\"\"".to_string(),
                    line: lineno,
                });
                i = j.saturating_add(1);
            } else if c == '\'' {
                if chars.get(i + 1) == Some(&'\'') {
                    // Blanked char literal.
                    out.push(Token {
                        kind: TokenKind::Literal,
                        text: "''".to_string(),
                        line: lineno,
                    });
                    i += 2;
                } else {
                    // Lifetime: `'` followed by an identifier.
                    let start = i;
                    i += 1;
                    while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                        i += 1;
                    }
                    out.push(Token {
                        kind: TokenKind::Lifetime,
                        text: chars[start..i].iter().collect(),
                        line: lineno,
                    });
                }
            } else {
                // Punctuation; fuse the operators the item scanner keys on.
                let two: String = chars[i..(i + 2).min(chars.len())].iter().collect();
                if two == "::" || two == "->" || two == "=>" {
                    out.push(Token {
                        kind: TokenKind::Punct,
                        text: two,
                        line: lineno,
                    });
                    i += 2;
                } else {
                    out.push(Token {
                        kind: TokenKind::Punct,
                        text: c.to_string(),
                        line: lineno,
                    });
                    i += 1;
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes(src: &str) -> Vec<String> {
        split_source(src).into_iter().map(|l| l.code).collect()
    }

    #[test]
    fn strings_are_blanked_but_delimited() {
        let lines = codes("let x = \"panic!(boom)\";\n");
        assert!(lines[0].contains('"'));
        assert!(!lines[0].contains("panic!("));
    }

    #[test]
    fn raw_strings_are_blanked() {
        let lines = codes("let x = r#\"a.unwrap()b\"#;\n");
        assert!(!lines[0].contains(".unwrap()"));
        assert!(lines[0].ends_with(';'));
    }

    #[test]
    fn comments_are_split_out() {
        let split = split_source("let x = 1; // .unwrap() in prose\n/* block\nspans */ let y;\n");
        assert!(!split[0].code.contains(".unwrap()"));
        assert!(split[0].comment.contains(".unwrap()"));
        assert!(split[1].comment.contains("block"));
        assert!(split[2].code.contains("let y"));
    }

    #[test]
    fn doc_comments_are_comments() {
        let split = split_source("/// asserts: assert!(x > 0)\nfn f() {}\n");
        assert!(!split[0].code.contains("assert!("));
        assert!(split[1].code.contains("fn f"));
    }

    #[test]
    fn lifetimes_survive_and_char_literals_blank() {
        let lines = codes("fn f<'a>(x: &'a str) -> char { '\\'' }\n");
        assert!(lines[0].contains("<'a>"));
        assert!(lines[0].contains("&'a str"));
        // The char literal body is blanked to a quote pair.
        assert!(lines[0].contains("''"));
    }

    #[test]
    fn multiline_strings_keep_line_count() {
        let src = "let s = \"line one\nline two\";\nlet t = 5;\n";
        let lines = codes(src);
        assert_eq!(lines.len(), 3);
        assert!(lines[2].contains("let t"));
    }

    #[test]
    fn cfg_test_mod_is_masked() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn inner() {}\n}\nfn after() {}\n";
        let lines = split_source(src);
        let mask = test_mask(&lines);
        assert_eq!(mask, vec![false, true, true, true, true, false]);
    }

    #[test]
    fn cfg_test_single_item_ends_at_semicolon() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn live() {}\n";
        let lines = split_source(src);
        let mask = test_mask(&lines);
        assert_eq!(mask, vec![true, true, false]);
    }

    #[test]
    fn cfg_not_test_is_not_masked() {
        let src = "#[cfg(not(test))]\nfn live() {}\n";
        let lines = split_source(src);
        let mask = test_mask(&lines);
        assert_eq!(mask, vec![false, false]);
    }

    #[test]
    fn tokens_carry_lines_and_kinds() {
        let toks = lex_tokens(&split_source("fn f() {\n    x.push(1);\n}\n"));
        let texts: Vec<(&str, usize)> = toks.iter().map(|t| (t.text.as_str(), t.line)).collect();
        assert_eq!(
            texts,
            vec![
                ("fn", 1),
                ("f", 1),
                ("(", 1),
                (")", 1),
                ("{", 1),
                ("x", 2),
                (".", 2),
                ("push", 2),
                ("(", 2),
                ("1", 2),
                (")", 2),
                (";", 2),
                ("}", 3),
            ]
        );
        assert_eq!(toks[0].kind, TokenKind::Ident);
        assert_eq!(toks[9].kind, TokenKind::Literal);
    }

    #[test]
    fn path_separator_is_one_token() {
        let toks = lex_tokens(&split_source("Box::new(0)\n"));
        assert!(toks[1].is_punct("::"));
        assert!(toks[0].is_ident("Box"));
        assert!(toks[2].is_ident("new"));
    }

    #[test]
    fn lifetimes_are_not_idents() {
        let toks = lex_tokens(&split_source("fn f<'a>(x: &'a str) {}\n"));
        let lifetimes: Vec<&Token> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        assert_eq!(lifetimes[0].text, "'a");
    }

    #[test]
    fn string_contents_produce_no_tokens() {
        let toks = lex_tokens(&split_source("let s = \"Box::new(1)\";\n"));
        assert!(!toks.iter().any(|t| t.is_ident("Box")));
        assert!(toks.iter().any(|t| t.kind == TokenKind::Literal));
    }

    #[test]
    fn numeric_literals_do_not_eat_ranges() {
        let toks = lex_tokens(&split_source("for i in 0..10 {}\n"));
        let texts: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
        assert!(texts.contains(&"0"));
        assert!(texts.contains(&"10"));
        assert_eq!(texts.iter().filter(|t| **t == ".").count(), 2);
    }
}
