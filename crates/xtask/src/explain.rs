//! `cargo xtask explain`: abort forensics over flight-recorder captures
//! and traced-run metrics.
//!
//! The subcommand sniffs its input file and walks one of two formats:
//!
//! * a `bpush-capture-v1` flight-recorder capture
//!   ([`bpush_obs::Capture`]) — the frames are decoded back through the
//!   wire codec (the capture carries the `WireParams::derive` sizing
//!   quadruple exactly so this is possible offline), and the trigger
//!   violation is resolved into a causal chain: the violating
//!   invalidation-report entry, the conflicting write's cycle, the
//!   cycle distance, and the method-specific rule that fired;
//! * a `bpush-trace-v1` `metrics.json` document — counter-based
//!   forensics: the headline query fates plus the per-reason abort
//!   breakdown (`queries.aborted.*`).
//!
//! Both render as human-readable text or, with `--json`, as the
//! single-line all-integer `bpush-explain-v1` document whose key order
//! is locked by `tests/json_schema.rs`.

use crate::jsonv::{self, Json};
use bpush_broadcast::feed::{decode_segment, DecodedSegment, WireFeed};
use bpush_broadcast::wire::WireParams;
use bpush_broadcast::ControlInfo;
use bpush_core::Method;
use bpush_obs::monitor::{MonitorKind, MonitorPolicy, NO_CYCLE, NO_ITEM};
use bpush_obs::{Capture, CAPTURE_MAGIC};
use bpush_types::{BpushError, ItemId};

/// One decoded capture frame, reduced to its segment census.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameSummary {
    /// The broadcast cycle the frame encodes.
    pub cycle: u64,
    /// Entries in the frame's invalidation report.
    pub report_len: usize,
    /// Decoded data-segment records.
    pub data_records: usize,
    /// Whether the frame carried a directory segment.
    pub has_directory: bool,
}

/// The violating invalidation-report entry the forensics resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReportEntryFact {
    /// The cycle of the report naming the entry.
    pub report_cycle: u64,
    /// The invalidated item.
    pub item: u32,
    /// The conflicting write's cycle, as dated by the report.
    pub write_cycle: u64,
}

/// Forensics over one `bpush-capture-v1` capture.
#[derive(Debug, Clone)]
pub struct CaptureExplanation {
    /// The parsed capture (header, trigger, frames).
    pub capture: Capture,
    /// Per-frame decode census, oldest first.
    pub frames: Vec<FrameSummary>,
    /// The violating report entry, when the trigger names an item that
    /// a retained report invalidates.
    pub entry: Option<ReportEntryFact>,
    /// Cycles between the conflicting write and the violation.
    pub cycle_distance: Option<u64>,
    /// The method-specific rule that fired.
    pub rule: String,
}

/// Forensics over one `bpush-trace-v1` metrics document.
#[derive(Debug, Clone)]
pub struct TraceExplanation {
    /// The traced method's stable name.
    pub method: String,
    /// The traced run's seed.
    pub seed: u64,
    /// Whether the quick scale was used.
    pub quick: bool,
    /// Queries issued.
    pub queries: u64,
    /// Queries committed.
    pub committed: u64,
    /// Queries aborted.
    pub aborted: u64,
    /// The `queries.aborted.<reason>` breakdown, in document order.
    pub aborts: Vec<(String, u64)>,
}

/// The sniffed input and its forensics.
#[derive(Debug, Clone)]
pub enum Explanation {
    /// The input was a flight-recorder capture.
    Capture(Box<CaptureExplanation>),
    /// The input was a traced run's metrics document.
    Trace(TraceExplanation),
}

/// Sniffs `text` (capture magic first, JSON second) and runs the
/// matching forensics.
///
/// # Errors
/// Fails when the input matches neither format, or when a capture's
/// frames do not decode under the codec parameters it carries.
pub fn explain(text: &str) -> Result<Explanation, BpushError> {
    if text.starts_with(CAPTURE_MAGIC) {
        return explain_capture(text).map(|c| Explanation::Capture(Box::new(c)));
    }
    if text.trim_start().starts_with('{') {
        return explain_trace(text).map(Explanation::Trace);
    }
    Err(BpushError::invalid_config(
        "unrecognized input: expected a bpush-capture-v1 capture or a bpush-trace-v1 metrics.json",
    ))
}

/// Decodes one frame's wire bytes into its control information and
/// segment census.
fn decode_frame(
    cycle: u64,
    bytes: &[u8],
    params: WireParams,
) -> Result<(Option<ControlInfo>, FrameSummary), BpushError> {
    let mut feed = WireFeed::new();
    feed.push(bytes);
    let mut control = None;
    let mut summary = FrameSummary {
        cycle,
        report_len: 0,
        data_records: 0,
        has_directory: false,
    };
    while let Some(seg) = feed.pop()? {
        match decode_segment(seg, params)? {
            DecodedSegment::Control(ctrl) => {
                summary.report_len = ctrl.invalidation().len();
                control = Some(ctrl);
            }
            DecodedSegment::Data(_, records) => summary.data_records += records.len(),
            DecodedSegment::Directory(_) => summary.has_directory = true,
        }
    }
    Ok((control, summary))
}

/// Capture forensics: decode every retained frame and resolve the
/// trigger into its causal chain.
///
/// # Errors
/// Fails on a malformed capture or any frame that does not decode.
pub fn explain_capture(text: &str) -> Result<CaptureExplanation, BpushError> {
    let capture = Capture::parse(text)
        .ok_or_else(|| BpushError::invalid_config("malformed bpush-capture-v1 capture"))?;
    let params = WireParams::derive(
        capture.params[0],
        capture.params[1],
        capture.params[2],
        capture.params[3],
    );
    let mut controls: Vec<(u64, ControlInfo)> = Vec::new();
    let mut frames = Vec::with_capacity(capture.frames.len());
    for frame in &capture.frames {
        let (control, summary) = decode_frame(frame.cycle, &frame.bytes, params)
            .map_err(|e| BpushError::invalid_config(format!("frame cycle={}: {e}", frame.cycle)))?;
        if let Some(ctrl) = control {
            controls.push((frame.cycle, ctrl));
        }
        frames.push(summary);
    }

    // Resolve the violating report entry: prefer the report the trigger
    // itself blames (`detail` holds the dooming report cycle for
    // currency/coverage violations), then the confirmation cycle, then
    // any retained report naming the item, newest first.
    let trigger = capture.trigger;
    let mut entry = None;
    if trigger.item != NO_ITEM {
        let item = ItemId::new(trigger.item);
        let mut candidates: Vec<u64> = Vec::new();
        if matches!(
            trigger.kind,
            MonitorKind::Currency | MonitorKind::Coverage | MonitorKind::Serializability
        ) && trigger.detail != NO_CYCLE
        {
            candidates.push(trigger.detail);
        }
        candidates.push(trigger.cycle);
        let resolve = |cycle: u64| -> Option<ReportEntryFact> {
            let (_, ctrl) = controls.iter().find(|(c, _)| *c == cycle)?;
            let write_cycle = ctrl.invalidation().update_cycle(item)?;
            Some(ReportEntryFact {
                report_cycle: cycle,
                item: trigger.item,
                write_cycle: write_cycle.number(),
            })
        };
        entry = candidates.iter().find_map(|&c| resolve(c)).or_else(|| {
            controls.iter().rev().find_map(|(cycle, ctrl)| {
                ctrl.invalidation()
                    .update_cycle(item)
                    .map(|wc| ReportEntryFact {
                        report_cycle: *cycle,
                        item: trigger.item,
                        write_cycle: wc.number(),
                    })
            })
        });
    }
    let write_cycle = if trigger.write_cycle != NO_CYCLE {
        Some(trigger.write_cycle)
    } else {
        entry.map(|e| e.write_cycle)
    };
    let cycle_distance = write_cycle.map(|wc| trigger.cycle.saturating_sub(wc));
    let rule = rule_of(&capture.method, trigger.kind);

    Ok(CaptureExplanation {
        capture,
        frames,
        entry,
        cycle_distance,
        rule,
    })
}

/// The published rule behind a violation of `kind` under `method` —
/// the last link of the causal chain.
fn rule_of(method: &str, kind: MonitorKind) -> String {
    let policy = Method::ALL
        .iter()
        .find(|m| m.name() == method)
        .map(|m| m.monitor_policy().0);
    let rule = match (kind, policy) {
        (MonitorKind::Currency, Some(MonitorPolicy::Current)) => {
            "§3.1 invalidation: once a report invalidates the readset the \
             query is doomed — no later read may be accepted"
        }
        (MonitorKind::Currency, Some(MonitorPolicy::Snapshot)) => {
            "§3.2/§4.1 snapshot currency: every read must come from one \
             database state; a read past the first overwrite breaks it"
        }
        (MonitorKind::Currency, _) => {
            "currency: a read was accepted after the readset was invalidated"
        }
        (MonitorKind::Serializability, _) => {
            "§3.3 SGT: the commit closes a cycle in the serialization graph"
        }
        (MonitorKind::Coverage, Some(MonitorPolicy::Graph)) => {
            "§3.3: a missed control cycle leaves the graph unsound — the \
             query must abort, not commit"
        }
        (MonitorKind::Coverage, _) => {
            "§5.2.2 window rule: a gap past the report window leaves the \
             readset unscreened — the query must abort, not commit"
        }
        (MonitorKind::Stream, _) => {
            "event-stream integrity: spans must balance and cycle numbers \
             must not regress"
        }
        (MonitorKind::AbortWatch, _) => {
            "abort-reason watch: a watched AbortReason fired (capture \
             trigger, not a violation)"
        }
    };
    format!("{method}: {rule}")
}

/// Trace forensics over a `bpush-trace-v1` metrics document.
///
/// # Errors
/// Fails when the text is not valid JSON or lacks the trace schema.
pub fn explain_trace(text: &str) -> Result<TraceExplanation, BpushError> {
    let root = jsonv::parse(text.trim()).map_err(BpushError::invalid_config)?;
    if root.get("schema").and_then(Json::as_str) != Some("bpush-trace-v1") {
        return Err(BpushError::invalid_config(
            "missing or wrong `schema` (want \"bpush-trace-v1\")",
        ));
    }
    let field = |key: &str| -> Result<u64, BpushError> {
        root.get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| BpushError::invalid_config(format!("missing integer `{key}`")))
    };
    let mut aborts = Vec::new();
    if let Some(counters) = root.get("counters").and_then(Json::as_arr) {
        for c in counters {
            let (Some(name), Some(value)) = (
                c.get("name").and_then(Json::as_str),
                c.get("value").and_then(Json::as_u64),
            ) else {
                continue;
            };
            if let Some(reason) = name.strip_prefix("queries.aborted.") {
                aborts.push((reason.to_string(), value));
            }
        }
    }
    Ok(TraceExplanation {
        method: root
            .get("method")
            .and_then(Json::as_str)
            .unwrap_or("?")
            .to_string(),
        seed: field("seed")?,
        quick: root.get("quick").and_then(Json::as_bool).unwrap_or(false),
        queries: field("queries")?,
        committed: field("committed")?,
        aborted: field("aborted")?,
        aborts,
    })
}

/// Renders the forensics as a human-readable causal chain.
#[must_use]
pub fn render_text(explanation: &Explanation) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    match explanation {
        Explanation::Capture(c) => {
            let cap = &c.capture;
            let t = cap.trigger;
            let _ = writeln!(
                out,
                "xtask explain: {CAPTURE_MAGIC} (method {}, seed {}, {} clients)",
                cap.method, cap.seed, cap.clients
            );
            let _ = writeln!(
                out,
                "trigger: {} violation confirmed at cycle {} (client {}, query {})",
                t.kind.label(),
                t.cycle,
                t.client,
                t.query
            );
            out.push_str("causal chain:\n");
            let mut step = 1u32;
            if let Some(wc) = (t.write_cycle != NO_CYCLE)
                .then_some(t.write_cycle)
                .or(c.entry.map(|e| e.write_cycle))
            {
                if t.item != NO_ITEM {
                    let _ = writeln!(
                        out,
                        "  {step}. an update transaction wrote item {} at cycle {wc}",
                        t.item
                    );
                    step += 1;
                }
            }
            if let Some(e) = c.entry {
                let _ = writeln!(
                    out,
                    "  {step}. the cycle-{} invalidation report names item {} \
                     (write cycle {}) — the violating report entry",
                    e.report_cycle, e.item, e.write_cycle
                );
                step += 1;
            } else if t.item != NO_ITEM {
                let _ = writeln!(
                    out,
                    "  {step}. no retained report names item {} — the report \
                     predates the flight window ({} frames dropped)",
                    t.item, cap.dropped
                );
                step += 1;
            }
            if let Some(d) = c.cycle_distance {
                let _ = writeln!(
                    out,
                    "  {step}. query {} (client {}) was still fed {d} cycle(s) \
                     after the conflicting write",
                    t.query, t.client
                );
                step += 1;
            }
            let _ = writeln!(out, "  {step}. rule: {}", c.rule);
            let _ = writeln!(
                out,
                "frames: {} retained ({} dropped), client fingerprint {:016x}",
                c.frames.len(),
                cap.dropped,
                cap.fingerprint
            );
            for f in &c.frames {
                let _ = writeln!(
                    out,
                    "  cycle {}: {} report entries, {} data records{}",
                    f.cycle,
                    f.report_len,
                    f.data_records,
                    if f.has_directory { ", directory" } else { "" }
                );
            }
        }
        Explanation::Trace(t) => {
            let _ = writeln!(
                out,
                "xtask explain: bpush-trace-v1 (method {}, seed {:#x}, {} scale)",
                t.method,
                t.seed,
                if t.quick { "quick" } else { "paper" }
            );
            let _ = writeln!(
                out,
                "queries: {} issued, {} committed, {} aborted",
                t.queries, t.committed, t.aborted
            );
            if t.aborts.is_empty() {
                out.push_str("aborts: none recorded\n");
            } else {
                out.push_str("abort reasons:\n");
                for (reason, count) in &t.aborts {
                    let _ = writeln!(out, "  {reason}: {count}");
                }
            }
        }
    }
    out
}

/// Appends `key` as either an integer or `null`.
fn push_opt(out: &mut String, key: &str, value: Option<u64>) {
    match value {
        Some(v) => out.push_str(&format!(",\"{key}\":{v}")),
        None => out.push_str(&format!(",\"{key}\":null")),
    }
}

/// Renders the single-line `bpush-explain-v1` document (pinned key
/// order, locked by `tests/json_schema.rs`; no trailing newline).
#[must_use]
pub fn render_json(explanation: &Explanation) -> String {
    let mut out = String::with_capacity(512);
    out.push_str("{\"schema\":\"bpush-explain-v1\"");
    match explanation {
        Explanation::Capture(c) => {
            let cap = &c.capture;
            let t = cap.trigger;
            out.push_str(",\"input\":\"capture\"");
            out.push_str(&format!(",\"method\":\"{}\"", cap.method));
            out.push_str(&format!(",\"seed\":{}", cap.seed));
            out.push_str(&format!(",\"clients\":{}", cap.clients));
            out.push_str(&format!(",\"kind\":\"{}\"", t.kind.label()));
            out.push_str(&format!(",\"client\":{}", t.client));
            out.push_str(&format!(",\"query\":{}", t.query));
            out.push_str(&format!(",\"cycle\":{}", t.cycle));
            push_opt(
                &mut out,
                "item",
                (t.item != NO_ITEM).then(|| u64::from(t.item)),
            );
            push_opt(
                &mut out,
                "write_cycle",
                (t.write_cycle != NO_CYCLE)
                    .then_some(t.write_cycle)
                    .or(c.entry.map(|e| e.write_cycle)),
            );
            push_opt(&mut out, "report_cycle", c.entry.map(|e| e.report_cycle));
            push_opt(&mut out, "cycle_distance", c.cycle_distance);
            out.push_str(&format!(",\"report_entry_found\":{}", c.entry.is_some()));
            out.push_str(&format!(
                ",\"rule\":{}",
                bpush_obs::export::json_string(&c.rule)
            ));
            out.push_str(&format!(",\"frames\":{}", c.frames.len()));
            out.push_str(&format!(",\"dropped\":{}", cap.dropped));
            out.push_str(&format!(",\"fingerprint\":\"{:016x}\"", cap.fingerprint));
        }
        Explanation::Trace(t) => {
            out.push_str(",\"input\":\"trace\"");
            out.push_str(&format!(",\"method\":\"{}\"", t.method));
            out.push_str(&format!(",\"seed\":{}", t.seed));
            out.push_str(&format!(",\"quick\":{}", t.quick));
            out.push_str(&format!(",\"queries\":{}", t.queries));
            out.push_str(&format!(",\"committed\":{}", t.committed));
            out.push_str(&format!(",\"aborted\":{}", t.aborted));
            out.push_str(",\"aborts\":[");
            for (i, (reason, count)) in t.aborts.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!("{{\"reason\":\"{reason}\",\"count\":{count}}}"));
            }
            out.push(']');
        }
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpush_sim::{monitors_for, CaptureSlot, Simulation};
    use bpush_types::SimConfig;

    /// The quick sim configuration the capture fixtures run at (the
    /// same scale `crates/sim` uses for its own monitor tests).
    fn quick_config() -> SimConfig {
        SimConfig {
            server: bpush_types::ServerConfig {
                broadcast_size: 200,
                update_range: 100,
                server_read_range: 200,
                updates_per_cycle: 20,
                txns_per_cycle: 5,
                ..bpush_types::ServerConfig::default()
            },
            client: bpush_types::ClientConfig {
                read_range: 100,
                reads_per_query: 6,
                ..bpush_types::ClientConfig::default()
            },
            n_clients: 3,
            queries_per_client: 15,
            warmup_cycles: 3,
            max_cycles: 20_000,
            seed: 99,
        }
    }

    /// Runs the seeded BrokenInvalidation mutant under monitors with
    /// the flight recorder attached and returns the rendered capture.
    fn broken_capture() -> String {
        let config = quick_config();
        let method = bpush_core::Method::InvalidationOnly;
        let slot = CaptureSlot::new();
        let sim = Simulation::new(config.clone(), method)
            .unwrap()
            .with_protocol_factory(|| Box::new(bpush_mc::BrokenInvalidation::new()))
            .with_monitors(monitors_for(&config, method))
            .with_flight_recorder(8, slot.clone());
        sim.run().unwrap();
        slot.take().expect("the mutant trips a capture").render()
    }

    /// The acceptance criterion: explain on a real mutant capture names
    /// the violating report entry (item + report cycle) and the rule.
    #[test]
    fn explain_names_the_violating_report_entry_and_cycle() {
        let text = broken_capture();
        let explanation = explain(&text).unwrap();
        let Explanation::Capture(c) = &explanation else {
            panic!("capture input must sniff as a capture");
        };
        assert_eq!(c.capture.method, "inv-only");
        let entry = c.entry.expect("the violating report entry is resolved");
        assert_eq!(entry.item, c.capture.trigger.item, "entry names the item");
        assert!(
            entry.report_cycle <= c.capture.trigger.cycle,
            "the report predates or matches the confirmation cycle"
        );
        let rendered = render_text(&explanation);
        assert!(
            rendered.contains(&format!(
                "the cycle-{} invalidation report names item {}",
                entry.report_cycle, entry.item
            )),
            "text names the violating report entry and cycle:\n{rendered}"
        );
        assert!(rendered.contains("rule: inv-only: §3.1"), "{rendered}");
        let json = render_json(&explanation);
        assert!(json.starts_with("{\"schema\":\"bpush-explain-v1\",\"input\":\"capture\""));
        assert!(json.contains("\"report_entry_found\":true"), "{json}");
        assert!(json.contains(&format!("\"item\":{}", entry.item)), "{json}");
    }

    /// Same seed, same capture, same forensics — byte-identical output.
    #[test]
    fn explain_is_deterministic_for_same_seed_captures() {
        let (a, b) = (broken_capture(), broken_capture());
        assert_eq!(a, b, "same-seed captures are byte-identical");
        let (ea, eb) = (explain(&a).unwrap(), explain(&b).unwrap());
        assert_eq!(render_text(&ea), render_text(&eb));
        assert_eq!(render_json(&ea), render_json(&eb));
    }

    /// Trace input: the metrics document explains as counter-based
    /// forensics with the per-reason abort breakdown.
    #[test]
    fn explain_walks_a_trace_metrics_document() {
        let report = crate::trace::run_trace(bpush_core::Method::InvalidationOnly, true).unwrap();
        let metrics = crate::trace::render_metrics_json(&report);
        let explanation = explain(&metrics).unwrap();
        let Explanation::Trace(t) = &explanation else {
            panic!("trace input must sniff as a trace");
        };
        assert_eq!(t.method, "inv-only");
        assert_eq!(t.committed + t.aborted, t.queries);
        let breakdown: u64 = t.aborts.iter().map(|(_, n)| n).sum();
        assert_eq!(breakdown, t.aborted, "abort reasons partition the aborts");
        let json = render_json(&explanation);
        assert!(json.starts_with("{\"schema\":\"bpush-explain-v1\",\"input\":\"trace\""));
        let text = render_text(&explanation);
        assert!(text.contains("queries:"), "{text}");
    }

    /// Unrecognized input is a loud error, not a guess.
    #[test]
    fn explain_rejects_unknown_input() {
        assert!(explain("neither a capture nor json").is_err());
        assert!(explain("{\"schema\":\"bpush-bench-v1\"}").is_err());
    }
}
