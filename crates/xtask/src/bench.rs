//! `cargo xtask bench`: the fixed-seed performance-trajectory harness.
//!
//! Two passes, both fully deterministic in *work* (timings vary, the
//! operation streams do not):
//!
//! 1. **Substrate microbench** — an identical sliding-window SGT workload
//!    (layered transaction edges, query entanglement, deep
//!    `would_close_cycle` probes, per-cycle `remove_query`, windowed
//!    `prune_before`) driven over both [`bpush_sgraph::SerializationGraph`]
//!    (the dense interned implementation) and
//!    [`bpush_sgraph::baseline::BaselineGraph`] (the original
//!    BTree-adjacency implementation). The two runs must produce the same
//!    checksum — the bench doubles as a differential check — and the
//!    headline number is `sgt_speedup_pct`, the baseline/interned wall-time
//!    ratio in integer percent (`200` = 2x).
//! 2. **Per-method end-to-end pass** — every [`Method`] runs through the
//!    full simulator at the paper defaults (or the quick scale with
//!    `--quick`), recording wall time, query count, and commit count.
//!
//! The report renders to an all-integer JSON document (schema
//! `bpush-bench-v1`, pinned key order) written to `BENCH_3.json` so the
//! repository carries its own performance trajectory; the schema is locked
//! by `tests/json_schema.rs` exactly like `lint --json` and `mc --json`.

use std::path::Path;
use std::time::Instant;

use crate::jsonv::{self, Json};
use bpush_broadcast::feed::{decode_segment, encode_bcast_segments, DecodedSegment, WireFeed};
use bpush_broadcast::wire::WireParams;
use bpush_broadcast::{Bcast, InvalidationReport};
use bpush_core::batch::{stale_verdicts, CohortScreen};
use bpush_core::{Method, ReadSet};
use bpush_server::BroadcastServer;
use bpush_sgraph::baseline::BaselineGraph;
use bpush_sgraph::{Node, SerializationGraph};
use bpush_sim::experiments::{config_for, defaults, Scale};
use bpush_sim::{monitors_for, run_sharded_with_workers, Job, Simulation};
use bpush_types::config::MultiversionLayout;
use bpush_types::{BpushError, Cycle, Granularity, ItemId, QueryId, ServerConfig, TxnId};

/// One timed substrate workload.
#[derive(Debug, Clone)]
pub struct SubstrateBench {
    /// Stable workload name (`sgt-substrate-interned`, `sgt-substrate-baseline`).
    pub name: String,
    /// Number of timed repetitions of the full workload.
    pub iters: u64,
    /// Total wall time across all repetitions, in nanoseconds.
    pub total_ns: u64,
    /// `total_ns / iters`.
    pub ns_per_iter: u64,
}

/// One end-to-end simulator run.
#[derive(Debug, Clone)]
pub struct MethodBench {
    /// Method name as printed by the experiment tables (e.g. `sgt`).
    pub method: String,
    /// Wall time of the full simulation, in nanoseconds.
    pub wall_ns: u64,
    /// Queries issued (after warmup).
    pub queries: u64,
    /// Queries that committed (issued minus aborted).
    pub committed: u64,
}

/// The full `cargo xtask bench` report.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// The simulator seed used for the per-method pass.
    pub seed: u64,
    /// Whether the reduced `--quick` scale was used.
    pub quick: bool,
    /// The substrate microbenches (interned first, baseline second).
    pub substrate: Vec<SubstrateBench>,
    /// Baseline-over-interned substrate wall-time ratio in integer
    /// percent: `200` means the interned graph is 2x faster.
    pub sgt_speedup_pct: u64,
    /// Per-method end-to-end results, in [`Method::ALL`] order.
    pub methods: Vec<MethodBench>,
}

/// The sliding-window SGT substrate workload, written once and expanded
/// for both graph implementations (their APIs are intentionally
/// identical). Returns a checksum so the optimizer cannot drop the work
/// and the two implementations can be cross-checked.
macro_rules! substrate_workload {
    ($graph:ty, $cycles:expr, $window:expr) => {{
        let cycles: u64 = $cycles;
        let window: u64 = $window;
        let mut g = <$graph>::new();
        let mut closed: u64 = 0;
        for cy in 1..=cycles {
            // The cycle's transactions, each reading from the previous
            // layer: a dense layered DAG, matching the shape SGT builds
            // from consecutive control-information broadcasts.
            for seq in 0..10u32 {
                g.add_edge(
                    Node::Txn(TxnId::new(Cycle::new(cy - 1), seq)),
                    Node::Txn(TxnId::new(Cycle::new(cy), (seq + 3) % 10)),
                );
            }
            // Two active queries entangled with the fresh layer, as
            // `try_add_edge` would leave them after a round of reads.
            let q0 = QueryId::new(cy * 2);
            let q1 = QueryId::new(cy * 2 + 1);
            g.add_edge(Node::Query(q0), Node::Txn(TxnId::new(Cycle::new(cy), 0)));
            g.add_edge(Node::Txn(TxnId::new(Cycle::new(cy), 1)), Node::Query(q0));
            g.add_edge(Node::Query(q1), Node::Txn(TxnId::new(Cycle::new(cy), 2)));
            // Acceptance probes at increasing depth: each one forces a
            // DFS from an old transaction forward through the layers.
            for k in [1u64, 4, 16, 64] {
                if cy > k {
                    let old = Node::Txn(TxnId::new(Cycle::new(cy - k), 0));
                    if g.would_close_cycle(Node::Query(q0), old) {
                        closed += 1;
                    }
                }
            }
            // Retire this cycle's first query and the previous cycle's
            // second, then slide the pruning window.
            g.remove_query(q0);
            if cy > 1 {
                g.remove_query(QueryId::new((cy - 1) * 2 + 1));
            }
            if cy > window {
                g.prune_before(Cycle::new(cy - window));
            }
        }
        closed
            .wrapping_mul(1_000_003)
            .wrapping_add(g.node_count() as u64)
            .wrapping_mul(1_000_003)
            .wrapping_add(g.edge_count() as u64)
    }};
}

/// SplitMix64 — the deterministic id stream for the membership fixture
/// (same mix the sim runner uses for replication seeds).
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The report-membership fixture: a region-structured id universe where
/// the report touches only the low regions, so most cohorts are
/// provably disjoint — the shape one broadcast cycle presents to a
/// client population, and the case the PR-8 word-AND path is built for.
struct MembershipFixture {
    report: InvalidationReport,
    /// Per cohort: the readsets of its co-resident queries.
    cohorts: Vec<Vec<ReadSet>>,
    /// Per cohort: the incrementally-maintained union screen.
    screens: Vec<CohortScreen>,
}

/// Ids per region; cohort `j` reads only within region `j`.
const REGION: u64 = 64;

fn membership_fixture(quick: bool) -> MembershipFixture {
    let (regions, per_cohort, per_readset, updates) = if quick {
        (24usize, 3usize, 8u64, 120u64)
    } else {
        (64, 4, 12, 300)
    };
    // the report names `updates` items inside the low eighth of the
    // universe: cohorts there fall back to per-query probes, the rest
    // screen out in one word-AND pass
    let hot_span = (regions as u64 * REGION) / 8;
    let report = InvalidationReport::new(
        Cycle::new(1),
        1,
        (0..updates).map(|i| ItemId::new((mix(i) % hot_span) as u32)),
        Granularity::Item,
        1,
    );
    let mut cohorts = Vec::with_capacity(regions);
    let mut screens = Vec::with_capacity(regions);
    for j in 0..regions as u64 {
        let mut cohort = Vec::with_capacity(per_cohort);
        for q in 0..per_cohort as u64 {
            let rs: ReadSet = (0..per_readset)
                .map(|k| ItemId::new((j * REGION + mix(j * 131 + q * 17 + k) % REGION) as u32))
                .collect();
            cohort.push(rs);
        }
        screens.push(CohortScreen::for_readsets(cohort.iter()));
        cohorts.push(cohort);
    }
    MembershipFixture {
        report,
        cohorts,
        screens,
    }
}

impl MembershipFixture {
    /// Every readset probed through the word-AND membership path.
    fn probe_words(&self) -> u64 {
        let mut hits = 0u64;
        for cohort in &self.cohorts {
            for rs in cohort {
                if self
                    .report
                    .any_stale_set(rs.as_slice(), rs.word_blocks(), Cycle::ZERO)
                {
                    hits += 1;
                }
            }
        }
        hits
    }

    /// Every readset probed through the PR-3 galloping path.
    fn probe_gallop(&self) -> u64 {
        let mut hits = 0u64;
        for cohort in &self.cohorts {
            for rs in cohort {
                if self.report.any_stale(rs.as_slice(), Cycle::ZERO) {
                    hits += 1;
                }
            }
        }
        hits
    }

    /// Whole cohorts through the batch engine: one screen pass each,
    /// per-query word probes only where the screen cannot settle it.
    fn batch_words(&self, out: &mut Vec<bool>) -> u64 {
        let mut hits = 0u64;
        for (cohort, screen) in self.cohorts.iter().zip(&self.screens) {
            let cohort: Vec<(&ReadSet, Cycle)> =
                cohort.iter().map(|rs| (rs, Cycle::ZERO)).collect();
            stale_verdicts(&self.report, screen, &cohort, out);
            hits += out.iter().filter(|&&b| b).count() as u64;
        }
        hits
    }

    /// The same cohorts validated query by query with galloping probes —
    /// the PR-3 client loop the batch engine replaces.
    fn batch_gallop(&self) -> u64 {
        let mut hits = 0u64;
        for cohort in &self.cohorts {
            for rs in cohort {
                if self.report.any_stale(rs.as_slice(), Cycle::ZERO) {
                    hits += 1;
                }
            }
        }
        hits
    }
}

/// One multiply–add checksum step (same fold the substrate workload
/// uses).
fn fold_step(acc: u64, x: u64) -> u64 {
    acc.wrapping_mul(1_000_003).wrapping_add(x)
}

/// FNV-1a over a string, for hashing protocol snapshots into the
/// wire-feed checksum.
fn fnv64_str(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    h
}

/// The sans-IO feed fixture: an SGT server's cycles captured both as
/// in-memory [`Bcast`]s and as framed wire segments
/// (`bpush_broadcast::feed`). The two probe passes drive the same
/// protocol state machine over the same cycles — one reassembling and
/// decoding wire bytes, one hearing the structs directly — and fold an
/// identical checksum over the final protocol snapshot plus the
/// data/directory content, so any encode/decode divergence fails the
/// bench instead of silently skewing it.
struct WireFixture {
    bcasts: Vec<Bcast>,
    /// Per cycle, the framed segment bytes on the air.
    streams: Vec<Vec<u8>>,
    params: WireParams,
}

fn wire_fixture(quick: bool) -> Result<WireFixture, BpushError> {
    let cycles: u64 = if quick { 24 } else { 96 };
    let config = ServerConfig {
        broadcast_size: 200,
        update_range: 100,
        server_read_range: 200,
        updates_per_cycle: 20,
        txns_per_cycle: 5,
        ..ServerConfig::default()
    };
    let params = WireParams::derive(
        config.broadcast_size,
        config.report_window,
        config.txns_per_cycle,
        u32::try_from(cycles).unwrap_or(u32::MAX),
    );
    let mut server = BroadcastServer::new(
        config,
        Method::Sgt.server_options(MultiversionLayout::Overflow),
        17,
    )?;
    let mut bcasts = Vec::new();
    let mut streams = Vec::new();
    for _ in 0..cycles {
        let bcast = server.run_cycle();
        streams.push(encode_bcast_segments(&bcast, params));
        bcasts.push(bcast);
    }
    Ok(WireFixture {
        bcasts,
        streams,
        params,
    })
}

impl WireFixture {
    /// Bytes in: reassemble segments from 64-byte transport chunks,
    /// decode each, and feed the control reports to a fresh SGT
    /// protocol.
    fn decode_feed(&self) -> u64 {
        let mut protocol = Method::Sgt.build_protocol();
        let mut feed = WireFeed::new();
        let mut fold = 0u64;
        for stream in &self.streams {
            for chunk in stream.chunks(64) {
                feed.push(chunk);
            }
            // The fixture encoded these bytes itself; malformed
            // input here is a framing bug worth a loud stop.
            // lint: allow(panic) — fixture-encoded bytes; a decode failure is a framing bug
            while let Some(seg) = feed.pop().expect("well-formed fixture stream") {
                // lint: allow(panic) — fixture-encoded bytes; a decode failure is a framing bug
                match decode_segment(seg, self.params).expect("well-formed fixture stream") {
                    DecodedSegment::Control(ctrl) => protocol.on_control(&ctrl),
                    DecodedSegment::Data(_, records) => {
                        fold = fold_step(fold, records.len() as u64);
                    }
                    DecodedSegment::Directory(dir) => {
                        fold = fold_step(fold, dir.entries().count() as u64);
                    }
                }
            }
        }
        fold_step(fnv64_str(&protocol.debug_snapshot()), fold)
    }

    /// The same cycles heard as in-memory structs, folding the same
    /// checksum in the same order (directory, control, data).
    fn struct_feed(&self) -> u64 {
        let mut protocol = Method::Sgt.build_protocol();
        let mut fold = 0u64;
        for bcast in &self.bcasts {
            if let Some(dir) = bcast.directory() {
                fold = fold_step(fold, dir.entries().count() as u64);
            }
            protocol.on_control(bcast.control());
            fold = fold_step(fold, bcast.records().count() as u64);
        }
        fold_step(fnv64_str(&protocol.debug_snapshot()), fold)
    }
}

/// Times `iters` repetitions of `work`, returning `(total_ns,
/// last_checksum)`.
fn time_ns(iters: u64, mut work: impl FnMut() -> u64) -> (u64, u64) {
    let mut checksum = 0u64;
    let start = Instant::now();
    for _ in 0..iters {
        checksum = std::hint::black_box(work());
    }
    let total = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
    (total, checksum)
}

/// Runs the substrate microbench and the per-method pass.
///
/// # Errors
/// Propagates simulator configuration errors, and reports an internal
/// error if the interned and baseline graphs diverge on the shared
/// workload (they never should — the differential proptests lock this).
pub fn run_bench(quick: bool) -> Result<BenchReport, BpushError> {
    let (cycles, window, iters) = if quick { (120, 30, 3) } else { (400, 48, 10) };

    let (interned_ns, interned_sum) = time_ns(iters, || {
        substrate_workload!(SerializationGraph, cycles, window)
    });
    let (baseline_ns, baseline_sum) =
        time_ns(iters, || substrate_workload!(BaselineGraph, cycles, window));
    if interned_sum != baseline_sum {
        return Err(BpushError::invalid_config(format!(
            "substrate checksum mismatch: interned {interned_sum} != baseline {baseline_sum}"
        )));
    }
    let mut substrate = vec![
        SubstrateBench {
            name: "sgt-substrate-interned".to_owned(),
            iters,
            total_ns: interned_ns,
            ns_per_iter: interned_ns / iters.max(1),
        },
        SubstrateBench {
            name: "sgt-substrate-baseline".to_owned(),
            iters,
            total_ns: baseline_ns,
            ns_per_iter: baseline_ns / iters.max(1),
        },
    ];
    let sgt_speedup_pct = baseline_ns.saturating_mul(100) / interned_ns.max(1);

    // PR-8: word-AND report membership vs the PR-3 galloping probes,
    // and the batch cohort engine vs the per-query validation loop.
    // Each pair runs the identical probe stream; the hit counts are the
    // differential checksum.
    let fixture = membership_fixture(quick);
    let probe_iters: u64 = if quick { 60 } else { 400 };
    let (words_ns, words_sum) = time_ns(probe_iters, || fixture.probe_words());
    let (gallop_ns, gallop_sum) = time_ns(probe_iters, || fixture.probe_gallop());
    if words_sum != gallop_sum {
        return Err(BpushError::invalid_config(format!(
            "membership checksum mismatch: words {words_sum} != gallop {gallop_sum}"
        )));
    }
    let mut verdicts = Vec::new();
    let (bwords_ns, bwords_sum) = time_ns(probe_iters, || fixture.batch_words(&mut verdicts));
    let (bgallop_ns, bgallop_sum) = time_ns(probe_iters, || fixture.batch_gallop());
    if bwords_sum != bgallop_sum {
        return Err(BpushError::invalid_config(format!(
            "batch checksum mismatch: words {bwords_sum} != gallop {bgallop_sum}"
        )));
    }
    for (name, ns) in [
        ("report-membership-words", words_ns),
        ("report-membership-gallop", gallop_ns),
        ("batch-validation-words", bwords_ns),
        ("batch-validation-gallop", bgallop_ns),
    ] {
        substrate.push(SubstrateBench {
            name: name.to_owned(),
            iters: probe_iters,
            total_ns: ns,
            ns_per_iter: ns / probe_iters.max(1),
        });
    }

    // Sans-IO wire feed: the framed-segment decode path against the
    // struct-fed path, same protocol, same cycles. The checksum over
    // the final protocol snapshot plus decoded content is the
    // differential check — a mismatch is an encode/decode divergence.
    let wire = wire_fixture(quick)?;
    let feed_iters: u64 = if quick { 40 } else { 200 };
    let (wire_ns, wire_sum) = time_ns(feed_iters, || wire.decode_feed());
    let (struct_ns, struct_sum) = time_ns(feed_iters, || wire.struct_feed());
    if wire_sum != struct_sum {
        return Err(BpushError::invalid_config(format!(
            "wire-feed checksum mismatch: wire {wire_sum} != struct {struct_sum}"
        )));
    }
    for (name, ns) in [("wire-decode-feed", wire_ns), ("struct-feed", struct_ns)] {
        substrate.push(SubstrateBench {
            name: name.to_owned(),
            iters: feed_iters,
            total_ns: ns,
            ns_per_iter: ns / feed_iters.max(1),
        });
    }

    let scale = if quick { Scale::Quick } else { Scale::Paper };
    let base = defaults(scale);
    let seed = base.seed;
    let mut methods = Vec::with_capacity(Method::ALL.len());
    for &m in &Method::ALL {
        let sim = Simulation::new(config_for(m, base.clone()), m)?;
        let start = Instant::now();
        let metrics = sim.run()?;
        let wall_ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        methods.push(MethodBench {
            method: metrics.method.name().to_owned(),
            wall_ns,
            queries: metrics.queries,
            committed: metrics.queries.saturating_sub(metrics.aborts.hits()),
        });
    }

    // PR-8: the sharded runner at 1/2/4 worker threads over a fixed
    // shard layout; the deterministic metric snapshots must be
    // byte-identical at every worker count (the merge is in shard
    // order), which doubles as the run's differential check.
    let shard_job = Job::new(Method::InvalidationOnly, base.clone());
    let shards = base.n_clients.clamp(1, 4);
    let mut shard_snapshots: Vec<String> = Vec::new();
    for workers in [1usize, 2, 4] {
        let start = Instant::now();
        let metrics = run_sharded_with_workers(&shard_job, shards, workers)?;
        let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        shard_snapshots.push(metrics.deterministic_snapshot());
        substrate.push(SubstrateBench {
            name: format!("sharded-runner-{workers}w"),
            iters: 1,
            total_ns: ns,
            ns_per_iter: ns,
        });
    }
    if !shard_snapshots.windows(2).all(|w| w[0] == w[1]) {
        return Err(BpushError::invalid_config(
            "sharded runner metrics diverged across worker counts",
        ));
    }

    // PR-10: the online invariant monitors' overhead — one SGT run bare
    // and one with the monitor engine attached (SGT carries the
    // heaviest monitor, the incremental serializability graph). The
    // differential check: monitors observe but never perturb, so the
    // two metric snapshots must be byte-identical and the monitored
    // run's verdict must pass. The checked-in BENCH_10.json locks the
    // overhead ceiling (monitors-on >= 90% of monitors-off throughput)
    // in tests/json_schema.rs.
    let mon_config = config_for(Method::Sgt, base.clone());
    let start = Instant::now();
    let off_metrics = Simulation::new(mon_config.clone(), Method::Sgt)?.run()?;
    let off_ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
    let monitors = monitors_for(&mon_config, Method::Sgt);
    let start = Instant::now();
    let on_metrics = Simulation::new(mon_config.clone(), Method::Sgt)?
        .with_monitors(monitors.clone())
        .run()?;
    let on_ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
    if off_metrics.deterministic_snapshot() != on_metrics.deterministic_snapshot() {
        return Err(BpushError::invalid_config(
            "monitors perturbed the simulation metrics",
        ));
    }
    if !monitors.verdict().pass() {
        return Err(BpushError::invalid_config(
            "a genuine method tripped its monitors in the bench run",
        ));
    }
    for (name, ns) in [("monitors-off", off_ns), ("monitors-on", on_ns)] {
        substrate.push(SubstrateBench {
            name: name.to_owned(),
            iters: 1,
            total_ns: ns,
            ns_per_iter: ns,
        });
    }

    Ok(BenchReport {
        seed,
        quick,
        substrate,
        sgt_speedup_pct,
        methods,
    })
}

/// Renders the report as the pinned-key-order, all-integer
/// `bpush-bench-v1` JSON document (one line, no trailing newline).
#[must_use]
pub fn render_json(report: &BenchReport) -> String {
    let mut out = String::with_capacity(512);
    out.push_str("{\"schema\":\"bpush-bench-v1\"");
    out.push_str(&format!(",\"seed\":{}", report.seed));
    out.push_str(&format!(",\"quick\":{}", report.quick));
    out.push_str(",\"substrate\":[");
    for (i, s) in report.substrate.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"iters\":{},\"total_ns\":{},\"ns_per_iter\":{}}}",
            s.name, s.iters, s.total_ns, s.ns_per_iter
        ));
    }
    out.push(']');
    out.push_str(&format!(",\"sgt_speedup_pct\":{}", report.sgt_speedup_pct));
    out.push_str(",\"methods\":[");
    for (i, m) in report.methods.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"method\":\"{}\",\"wall_ns\":{},\"queries\":{},\"committed\":{}}}",
            m.method, m.wall_ns, m.queries, m.committed
        ));
    }
    out.push_str("]}");
    out
}

/// One checked-in `BENCH_<n>.json` report in the repository's
/// performance trajectory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrajectoryEntry {
    /// PR number extracted from the file name.
    pub pr: u64,
    /// File name at the workspace root (`BENCH_3.json`).
    pub file: String,
    /// The report's `quick` flag.
    pub quick: bool,
    /// The report's headline `sgt_speedup_pct`.
    pub sgt_speedup_pct: u64,
}

/// Discovers every `BENCH_<n>.json` at the workspace root, validates
/// each against the `bpush-bench-v1` schema, and returns the entries
/// sorted by PR number.
///
/// # Errors
/// Fails if the root cannot be listed, or any discovered report is
/// unreadable or fails schema validation — a checked-in report that no
/// longer parses is a broken trajectory, not a skippable file.
pub fn load_trajectory(root: &Path) -> Result<Vec<TrajectoryEntry>, BpushError> {
    let dir = std::fs::read_dir(root)
        .map_err(|e| BpushError::invalid_config(format!("cannot list {}: {e}", root.display())))?;
    let mut entries = Vec::new();
    for entry in dir {
        let entry =
            entry.map_err(|e| BpushError::invalid_config(format!("cannot list entry: {e}")))?;
        let name = entry.file_name().to_string_lossy().into_owned();
        let Some(pr) = name
            .strip_prefix("BENCH_")
            .and_then(|r| r.strip_suffix(".json"))
            .and_then(|n| n.parse::<u64>().ok())
        else {
            continue;
        };
        let text = std::fs::read_to_string(entry.path())
            .map_err(|e| BpushError::invalid_config(format!("cannot read {name}: {e}")))?;
        let (quick, sgt_speedup_pct) = validate_bench_json(&text)
            .map_err(|e| BpushError::invalid_config(format!("{name}: {e}")))?;
        entries.push(TrajectoryEntry {
            pr,
            file: name,
            quick,
            sgt_speedup_pct,
        });
    }
    entries.sort_by_key(|e| e.pr);
    Ok(entries)
}

/// Validates one report against the `bpush-bench-v1` schema, returning
/// its `(quick, sgt_speedup_pct)` on success.
fn validate_bench_json(text: &str) -> Result<(bool, u64), String> {
    let v = jsonv::parse(text.trim())?;
    if v.get("schema").and_then(Json::as_str) != Some("bpush-bench-v1") {
        return Err("missing or wrong `schema` (want \"bpush-bench-v1\")".to_string());
    }
    v.get("seed")
        .and_then(Json::as_u64)
        .ok_or("missing integer `seed`")?;
    let quick = v
        .get("quick")
        .and_then(Json::as_bool)
        .ok_or("missing boolean `quick`")?;
    let substrate = v
        .get("substrate")
        .and_then(Json::as_arr)
        .ok_or("missing array `substrate`")?;
    if substrate.is_empty() {
        return Err("`substrate` is empty".to_string());
    }
    for s in substrate {
        s.get("name")
            .and_then(Json::as_str)
            .ok_or("substrate entry missing `name`")?;
        for key in ["iters", "total_ns", "ns_per_iter"] {
            s.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("substrate entry missing integer `{key}`"))?;
        }
    }
    let speedup = v
        .get("sgt_speedup_pct")
        .and_then(Json::as_u64)
        .ok_or("missing integer `sgt_speedup_pct`")?;
    let methods = v
        .get("methods")
        .and_then(Json::as_arr)
        .ok_or("missing array `methods`")?;
    if methods.is_empty() {
        return Err("`methods` is empty".to_string());
    }
    for m in methods {
        m.get("method")
            .and_then(Json::as_str)
            .ok_or("method entry missing `method`")?;
        for key in ["wall_ns", "queries", "committed"] {
            m.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("method entry missing integer `{key}`"))?;
        }
    }
    Ok((quick, speedup))
}

/// Renders the trajectory as a short human-readable table.
#[must_use]
pub fn render_trajectory(entries: &[TrajectoryEntry]) -> String {
    let mut out = String::from("trajectory:\n");
    for e in entries {
        out.push_str(&format!(
            "  PR {:<3} {:<16} speedup {:>5}%  ({})\n",
            e.pr,
            e.file,
            e.sgt_speedup_pct,
            if e.quick { "quick" } else { "paper" }
        ));
    }
    out
}

/// Renders the report as a human-readable summary.
#[must_use]
pub fn render_text(report: &BenchReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "xtask bench (seed {:#x}, {} scale)\n\nsubstrate:\n",
        report.seed,
        if report.quick { "quick" } else { "paper" }
    ));
    for s in &report.substrate {
        out.push_str(&format!(
            "  {:<26} {:>12} ns/iter  ({} iters)\n",
            s.name, s.ns_per_iter, s.iters
        ));
    }
    out.push_str(&format!(
        "  interned vs baseline       {:>11}%  (>= 200 means >= 2x)\n\nmethods:\n",
        report.sgt_speedup_pct
    ));
    for m in &report.methods {
        out.push_str(&format!(
            "  {:<26} {:>12} ns  {} queries, {} committed\n",
            m.method, m.wall_ns, m.queries, m.committed
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_bench_produces_full_report() {
        let report = run_bench(true).unwrap();
        assert!(report.quick);
        assert_eq!(report.substrate.len(), 13);
        assert_eq!(report.substrate[0].name, "sgt-substrate-interned");
        assert_eq!(report.substrate[1].name, "sgt-substrate-baseline");
        for name in [
            "report-membership-words",
            "report-membership-gallop",
            "batch-validation-words",
            "batch-validation-gallop",
            "wire-decode-feed",
            "struct-feed",
            "sharded-runner-1w",
            "sharded-runner-2w",
            "sharded-runner-4w",
            "monitors-off",
            "monitors-on",
        ] {
            assert!(
                report.substrate.iter().any(|s| s.name == name),
                "missing substrate entry `{name}`"
            );
        }
        for s in &report.substrate {
            assert!(s.total_ns > 0);
            assert!(s.ns_per_iter > 0);
        }
        assert!(report.sgt_speedup_pct > 0);
        assert_eq!(report.methods.len(), Method::ALL.len());
        for m in &report.methods {
            assert!(m.queries > 0);
            assert!(m.committed <= m.queries);
        }
    }

    #[test]
    fn json_rendering_pins_schema_and_key_order() {
        let report = BenchReport {
            seed: 7,
            quick: true,
            substrate: vec![SubstrateBench {
                name: "sgt-substrate-interned".to_owned(),
                iters: 3,
                total_ns: 300,
                ns_per_iter: 100,
            }],
            sgt_speedup_pct: 250,
            methods: vec![MethodBench {
                method: "sgt".to_owned(),
                wall_ns: 42,
                queries: 10,
                committed: 9,
            }],
        };
        let json = render_json(&report);
        assert_eq!(
            json,
            "{\"schema\":\"bpush-bench-v1\",\"seed\":7,\"quick\":true,\
             \"substrate\":[{\"name\":\"sgt-substrate-interned\",\"iters\":3,\
             \"total_ns\":300,\"ns_per_iter\":100}],\"sgt_speedup_pct\":250,\
             \"methods\":[{\"method\":\"sgt\",\"wall_ns\":42,\"queries\":10,\
             \"committed\":9}]}"
        );
        let text = render_text(&report);
        assert!(text.contains("sgt-substrate-interned"));
        assert!(text.contains("250%"));
    }

    #[test]
    fn checked_in_trajectory_is_non_empty_and_monotone() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let traj = load_trajectory(&root).unwrap();
        assert!(
            !traj.is_empty(),
            "no BENCH_<n>.json found at the workspace root — the trajectory is empty"
        );
        for pair in traj.windows(2) {
            assert!(
                pair[0].pr < pair[1].pr,
                "trajectory PR numbers must be strictly increasing: {} then {}",
                pair[0].pr,
                pair[1].pr
            );
        }
        for e in &traj {
            assert!(e.sgt_speedup_pct > 0, "{}: zero speedup", e.file);
        }
        let text = render_trajectory(&traj);
        assert!(text.contains("PR 3"));
    }

    #[test]
    fn trajectory_validation_rejects_bad_reports() {
        assert!(validate_bench_json("not json").is_err());
        assert!(validate_bench_json("{}").is_err());
        assert!(validate_bench_json(
            "{\"schema\":\"bpush-bench-v1\",\"seed\":1,\"quick\":true,\
             \"substrate\":[],\"sgt_speedup_pct\":5,\"methods\":[]}"
        )
        .is_err());
        let good = render_json(&BenchReport {
            seed: 7,
            quick: true,
            substrate: vec![SubstrateBench {
                name: "sgt-substrate-interned".to_owned(),
                iters: 3,
                total_ns: 300,
                ns_per_iter: 100,
            }],
            sgt_speedup_pct: 250,
            methods: vec![MethodBench {
                method: "sgt".to_owned(),
                wall_ns: 42,
                queries: 10,
                committed: 9,
            }],
        });
        assert_eq!(validate_bench_json(&good), Ok((true, 250)));
    }

    #[test]
    fn substrate_workloads_agree_between_implementations() {
        let interned = substrate_workload!(SerializationGraph, 60, 16);
        let baseline = substrate_workload!(BaselineGraph, 60, 16);
        assert_eq!(interned, baseline);
        assert_ne!(interned, 0);
    }
}
