//! `cargo xtask trace`: one fixed-seed traced simulation run.
//!
//! The subcommand builds a [`Simulation`] for the chosen method with a
//! recording [`Obs`] sink attached, runs it to completion, and renders
//! three artifacts from the one [`TraceSnapshot`]:
//!
//! * `trace.json` — chrome `trace_event` JSON, loadable in Perfetto or
//!   `chrome://tracing` ([`bpush_obs::export::chrome_trace`]);
//! * `trace.ndjson` — one event per line for `grep`/`jq`
//!   ([`bpush_obs::export::ndjson`]);
//! * `metrics.json` — the all-integer `bpush-trace-v1` report
//!   ([`render_metrics_json`]), whose counters reconcile exactly with
//!   the simulator's [`MethodMetrics`] and the instrumentation
//!   decorator's `ProtocolStats` for the same seed.
//!
//! Everything is integer-timestamped and seeded, so two invocations
//! with the same flags produce byte-identical files — the property
//! `tests/json_schema.rs` locks.

use bpush_core::Method;
use bpush_obs::{Obs, TraceSnapshot, DEFAULT_CAPACITY};
use bpush_sim::{MethodMetrics, Simulation};
use bpush_types::{BpushError, SimConfig};

/// The fixed seed of every traced run: no flag changes it, so traces
/// are comparable across working trees and CI runs.
pub const TRACE_SEED: u64 = 0x7AC3_5EED;

/// Everything one traced run produced: the reduced simulator metrics
/// and the full observability snapshot, from which all three artifacts
/// render.
#[derive(Debug, Clone)]
pub struct TraceReport {
    /// The method traced.
    pub method: Method,
    /// Whether the quick (CI-sized) configuration was used.
    pub quick: bool,
    /// The fixed seed ([`TRACE_SEED`]).
    pub seed: u64,
    /// The simulator's own reduction of the run.
    pub metrics: MethodMetrics,
    /// The recorded events, counters, and histograms.
    pub snapshot: TraceSnapshot,
}

/// The configuration of the traced run: the simulator defaults at paper
/// scale, a CI-sized reduction under `--quick` — in both cases with
/// zero warm-up cycles, so the simulator's reduction covers exactly the
/// queries the trace saw and the two tallies reconcile without an
/// offset.
#[must_use]
pub fn trace_config(quick: bool) -> SimConfig {
    let mut config = SimConfig {
        seed: TRACE_SEED,
        warmup_cycles: 0,
        ..SimConfig::default()
    };
    if quick {
        config.server.broadcast_size = 200;
        config.server.update_range = 100;
        config.server.server_read_range = 200;
        config.server.updates_per_cycle = 20;
        config.server.txns_per_cycle = 5;
        config.client.read_range = 100;
        config.client.reads_per_query = 6;
        config.n_clients = 3;
        config.queries_per_client = 15;
    }
    config
}

/// Runs the fixed-seed traced simulation for `method`.
///
/// # Errors
/// Propagates configuration and cycle-budget errors from the simulator.
pub fn run_trace(method: Method, quick: bool) -> Result<TraceReport, BpushError> {
    let obs = Obs::recording(DEFAULT_CAPACITY);
    let metrics = Simulation::new(trace_config(quick), method)?
        .with_obs(obs.clone())
        .run()?;
    let snapshot = obs
        .snapshot()
        .ok_or_else(|| BpushError::invalid_config("recording sink lost its recorder"))?;
    Ok(TraceReport {
        method,
        quick,
        seed: TRACE_SEED,
        metrics,
        snapshot,
    })
}

/// Renders the pinned-key-order, all-integer `bpush-trace-v1` JSON
/// document (one line, no trailing newline). Committed/aborted are the
/// simulator's counts; `events`, `dropped`, `counters`, and
/// `histograms` come from the observability snapshot, histograms as
/// their non-empty log2 buckets only, each with its integer
/// midpoint-of-bucket `p50`/`p90`/`p99` estimates.
#[must_use]
pub fn render_metrics_json(report: &TraceReport) -> String {
    use bpush_obs::Log2Histogram;
    let mut out = String::with_capacity(1024);
    out.push_str("{\"schema\":\"bpush-trace-v1\"");
    out.push_str(&format!(",\"method\":\"{}\"", report.method.name()));
    out.push_str(&format!(",\"seed\":{}", report.seed));
    out.push_str(&format!(",\"quick\":{}", report.quick));
    out.push_str(&format!(",\"cycles\":{}", report.metrics.cycles));
    out.push_str(&format!(",\"queries\":{}", report.metrics.queries));
    out.push_str(&format!(
        ",\"committed\":{}",
        report.metrics.queries - report.metrics.aborts.hits()
    ));
    out.push_str(&format!(",\"aborted\":{}", report.metrics.aborts.hits()));
    out.push_str(&format!(",\"events\":{}", report.snapshot.events.len()));
    out.push_str(&format!(",\"dropped\":{}", report.snapshot.dropped));
    out.push_str(",\"counters\":[");
    for (i, (name, value)) in report.snapshot.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("{{\"name\":\"{name}\",\"value\":{value}}}"));
    }
    out.push_str("],\"histograms\":[");
    for (i, (name, hist)) in report.snapshot.histograms.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"name\":\"{name}\",\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\
             \"p50\":{},\"p90\":{},\"p99\":{},\"buckets\":[",
            hist.count(),
            hist.sum(),
            hist.min().unwrap_or(0),
            hist.max().unwrap_or(0),
            hist.p50().unwrap_or(0),
            hist.p90().unwrap_or(0),
            hist.p99().unwrap_or(0)
        ));
        for (j, (k, count)) in hist.nonzero_buckets().into_iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"floor\":{},\"ceil\":{},\"count\":{count}}}",
                Log2Histogram::bucket_floor(k),
                Log2Histogram::bucket_ceil(k)
            ));
        }
        out.push_str("]}");
    }
    out.push_str("]}");
    out
}

/// Renders a human-readable run summary: the simulator's headline
/// numbers followed by the snapshot's text summary.
#[must_use]
pub fn render_text(report: &TraceReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "xtask trace: {} (seed {:#x}, {} scale)\n\
         cycles {}, queries {} ({} committed, {} aborted)\n\n",
        report.method.name(),
        report.seed,
        if report.quick { "quick" } else { "paper" },
        report.metrics.cycles,
        report.metrics.queries,
        report.metrics.queries - report.metrics.aborts.hits(),
        report.metrics.aborts.hits(),
    ));
    out.push_str(&bpush_obs::export::text_summary(&report.snapshot));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The tentpole acceptance criterion end to end: the quick trace's
    /// `metrics.json` counters reconcile exactly with the simulator's
    /// [`MethodMetrics`] and with the decorator's `ProtocolStats` for
    /// the same seed, and two same-flag invocations are byte-identical
    /// across all three artifacts.
    #[test]
    fn quick_trace_reconciles_and_is_deterministic() {
        let a = run_trace(Method::Sgt, true).unwrap();
        let b = run_trace(Method::Sgt, true).unwrap();

        // Event-derived counters == simulator reduction (warmup is 0).
        let committed = a.metrics.queries - a.metrics.aborts.hits();
        assert_eq!(a.snapshot.counter("queries.committed"), committed);
        assert_eq!(
            a.snapshot.counter("queries.aborted"),
            a.metrics.aborts.hits()
        );
        assert_eq!(a.snapshot.counter("server.cycles"), a.metrics.cycles);
        // Event-derived counters == the decorator's ProtocolStats tally.
        assert_eq!(
            a.snapshot.counter("reads.accepted"),
            a.snapshot.counter("stats.accepts")
        );
        assert_eq!(
            a.snapshot.counter("reads.rejected"),
            a.snapshot.counter("stats.rejects")
        );
        assert_eq!(
            a.snapshot.counter("queries.committed") + a.snapshot.counter("queries.aborted"),
            a.snapshot.counter("stats.finishes")
        );

        // Byte-identical artifacts across same-flag invocations.
        assert_eq!(render_metrics_json(&a), render_metrics_json(&b));
        assert_eq!(
            bpush_obs::export::chrome_trace(&a.snapshot),
            bpush_obs::export::chrome_trace(&b.snapshot)
        );
        assert_eq!(
            bpush_obs::export::ndjson(&a.snapshot),
            bpush_obs::export::ndjson(&b.snapshot)
        );
    }

    /// The chrome export is structurally a trace_event document: a
    /// `traceEvents` array with thread-name metadata and balanced B/E
    /// span pairs.
    #[test]
    fn chrome_trace_has_trace_event_shape() {
        let report = run_trace(Method::InvalidationOnly, true).unwrap();
        let chrome = bpush_obs::export::chrome_trace(&report.snapshot);
        assert!(chrome.starts_with("{\"traceEvents\":["));
        assert!(chrome.contains("\"ph\":\"M\""));
        assert!(chrome.contains("\"name\":\"thread_name\""));
        assert!(chrome.contains("\"ph\":\"B\""));
        assert_eq!(
            chrome.matches("\"ph\":\"B\"").count(),
            chrome.matches("\"ph\":\"E\"").count(),
            "unbalanced span begin/end pairs"
        );
    }
}
