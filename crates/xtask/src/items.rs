//! Item indexer: one linear scan over a file's token stream that
//! extracts everything the interprocedural rules need — function items
//! with their call sites, allocation / IO / determinism needles, lock
//! acquisitions, `use` aliases, and the `bpush-lint: hot_path` /
//! `bpush-lint: sans_io` annotations.
//!
//! The indexer is deliberately approximate (no type inference): calls
//! are recorded by name plus whatever qualifier or receiver the tokens
//! show, and [`crate::callgraph`] resolves them against the workspace
//! with crate-dependency scoping and impl-type preference.

use std::collections::BTreeSet;
use std::path::PathBuf;

use crate::lex::{SplitLine, Token, TokenKind};
use crate::Rule;

/// Directive name marking a function as hot-path (L8 contract holder).
pub const HOT_PATH_MARKER: &str = "hot_path";
/// Directive name declaring a whole file protocol-core (L9 contract).
pub const SANS_IO_MARKER: &str = "sans_io";

/// Whether `comment` *is* the directive `name` — i.e. it starts with
/// `bpush-lint: <name>`. The splitter strips the `//` leader, so a doc
/// comment arrives starting with `/` (from `///`) or `!` (from `//!`):
/// those are prose, never directives, which is what lets this tool
/// document itself.
fn has_directive(comment: &str, name: &str) -> bool {
    if comment.starts_with('/') || comment.starts_with('!') {
        return false;
    }
    comment
        .trim_start()
        .strip_prefix("bpush-lint:")
        .map(str::trim_start)
        .is_some_and(|rest| rest.starts_with(name))
}

/// Method names that allocate on (at least) first call — the L8 needle
/// set for `.name(` receivers.
const ALLOC_METHODS: &[&str] = &[
    "push",
    "push_back",
    "insert",
    "append",
    "to_vec",
    "to_owned",
    "to_string",
    "collect",
    "clone",
    "extend",
    "extend_from_slice",
    "resize",
    "reserve",
    "with_capacity",
];

/// `(Type, constructor)` pairs that allocate — the L8 needle set for
/// `Type::name(` paths.
const ALLOC_PATHS: &[(&str, &str)] = &[
    ("Box", "new"),
    ("String", "from"),
    ("String", "with_capacity"),
    ("Vec", "from"),
    ("Vec", "with_capacity"),
    ("HashMap", "with_capacity"),
    ("HashSet", "with_capacity"),
    ("Rc", "new"),
    ("Arc", "new"),
];

/// Macros that allocate (L8).
const ALLOC_MACROS: &[&str] = &["vec", "format"];

/// Module path segments whose mere mention (`seg::…`) is an IO needle
/// (L9): threads, channels, filesystem, sockets.
const IO_MODULES: &[&str] = &["thread", "mpsc", "fs", "net"];

/// Type idents that are IO needles on sight (L9).
const IO_TYPES: &[&str] = &["TcpStream", "TcpListener", "UdpSocket"];

/// Identifiers never treated as call sites even when followed by `(`.
const CALL_KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "loop", "match", "return", "break", "continue", "move", "in",
    "as", "let", "mut", "ref", "fn", "pub", "use", "mod", "struct", "enum", "trait", "impl",
    "type", "const", "static", "where", "unsafe", "async", "await", "dyn", "crate", "super",
    "Some", "None", "Ok", "Err", "Fn", "FnMut", "FnOnce",
];

/// A resolved-by-name call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Callee name as written.
    pub name: String,
    /// `Type` in `Type::name(…)` (the path segment before `::`).
    pub qualifier: Option<String>,
    /// Receiver ident in `recv.name(…)` method calls (`self` included).
    pub receiver: Option<String>,
    /// 1-based source line.
    pub line: usize,
    /// Position in the file token stream (orders calls vs locks, L10).
    pub pos: usize,
}

/// One needle hit (allocation, IO, or determinism construct).
#[derive(Debug, Clone)]
pub struct Needle {
    /// What was matched, as shown in diagnostics (e.g. `Vec::push`).
    pub what: String,
    /// 1-based source line.
    pub line: usize,
}

/// One zero-argument `.lock()` / `.read()` / `.write()` acquisition.
#[derive(Debug, Clone)]
pub struct LockSite {
    /// Receiver ident the guard is taken from (lock identity, with the
    /// crate name, for L10).
    pub recv: String,
    /// 1-based source line.
    pub line: usize,
    /// Position in the file token stream (orders locks vs calls).
    pub pos: usize,
}

/// One function item with everything the L8–L11 drivers consume.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Function name.
    pub name: String,
    /// Enclosing `impl` target type, when inside an impl block.
    pub impl_type: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Declared inside a `#[cfg(test)]` region.
    pub is_test: bool,
    /// Carries the `bpush-lint: hot_path` annotation (L8).
    pub hot: bool,
    /// Call sites in body order.
    pub calls: Vec<CallSite>,
    /// Un-suppressed allocation needles (L8).
    pub allocs: Vec<Needle>,
    /// Un-suppressed IO needles (L9).
    pub ios: Vec<Needle>,
    /// Un-suppressed determinism needles (L11 cross-crate leg).
    pub dets: Vec<Needle>,
    /// Un-suppressed lock acquisitions (L10).
    pub locks: Vec<LockSite>,
}

/// A binding introduced by a `use` declaration.
#[derive(Debug, Clone)]
pub struct UseAlias {
    /// The name the declaration brings into scope.
    pub binding: String,
    /// The full path, `::`-joined, as written.
    pub target: String,
    /// Whether an `as` rename changed the binding from the path's last
    /// segment — the indirection L2's text match cannot see (L11).
    pub renamed: bool,
    /// 1-based source line.
    pub line: usize,
}

/// Everything indexed from one source file.
#[derive(Debug, Clone)]
pub struct FileIndex {
    /// Directory name of the crate under `crates/`.
    pub crate_name: String,
    /// Path relative to the workspace root.
    pub rel: PathBuf,
    /// The file carries the `bpush-lint: sans_io` declaration (L9).
    pub sans_io: bool,
    /// Function items in declaration order.
    pub fns: Vec<FnItem>,
    /// `use` bindings declared outside `#[cfg(test)]` regions.
    pub aliases: Vec<UseAlias>,
}

/// Indexes one file's token stream. `allows` is the per-line allow set
/// from the annotation pass; needles and locks on allowed lines are
/// dropped here so every downstream rule sees only live hits.
pub fn index_file(
    crate_name: &str,
    rel: &std::path::Path,
    lines: &[SplitLine],
    mask: &[bool],
    tokens: &[Token],
    allows: &[BTreeSet<Rule>],
) -> FileIndex {
    let sans_io = lines
        .iter()
        .any(|l| has_directive(&l.comment, SANS_IO_MARKER));
    let allowed = |line: usize, rule: Rule| {
        allows
            .get(line.saturating_sub(1))
            .is_some_and(|set| set.contains(&rule))
    };
    let masked = |line: usize| mask.get(line.saturating_sub(1)).copied().unwrap_or(false);

    let mut fns: Vec<FnItem> = Vec::new();
    let mut aliases: Vec<UseAlias> = Vec::new();

    // (frame open depth, fn index) for fn bodies; impl frames carry the
    // target type. `pending_*` bridges the gap between a header and its
    // opening brace.
    let mut depth: i64 = 0;
    let mut fn_stack: Vec<(i64, usize)> = Vec::new();
    let mut impl_stack: Vec<(i64, Option<String>)> = Vec::new();
    let mut pending_fn: Option<usize> = None;
    let mut pending_impl: Option<Option<String>> = None;

    let mut i = 0;
    while i < tokens.len() {
        let t = &tokens[i];
        match t.kind {
            TokenKind::Punct if t.text == "{" => {
                depth += 1;
                if let Some(fn_idx) = pending_fn.take() {
                    fn_stack.push((depth, fn_idx));
                } else if let Some(target) = pending_impl.take() {
                    impl_stack.push((depth, target));
                }
                i += 1;
            }
            TokenKind::Punct if t.text == "}" => {
                depth -= 1;
                while fn_stack.last().is_some_and(|(d, _)| *d > depth) {
                    fn_stack.pop();
                }
                while impl_stack.last().is_some_and(|(d, _)| *d > depth) {
                    impl_stack.pop();
                }
                i += 1;
            }
            TokenKind::Punct if t.text == ";" => {
                // A trait method declaration ends without a body.
                pending_fn = None;
                i += 1;
            }
            TokenKind::Ident if t.text == "use" && pending_fn.is_none() => {
                let (consumed, mut found) = parse_use(&tokens[i..], t.line);
                if !masked(t.line) {
                    aliases.append(&mut found);
                }
                i += consumed;
            }
            TokenKind::Ident if t.text == "impl" && !type_position(tokens, i) => {
                pending_impl = Some(impl_target(tokens, i + 1));
                i += 1;
            }
            TokenKind::Ident if t.text == "fn" => {
                if let Some(name_tok) = tokens.get(i + 1).filter(|n| n.kind == TokenKind::Ident) {
                    let impl_type = impl_stack.last().and_then(|(_, t)| t.clone());
                    fns.push(FnItem {
                        name: name_tok.text.clone(),
                        impl_type,
                        line: t.line,
                        is_test: masked(t.line),
                        hot: has_marker_above(lines, t.line, HOT_PATH_MARKER),
                        calls: Vec::new(),
                        allocs: Vec::new(),
                        ios: Vec::new(),
                        dets: Vec::new(),
                        locks: Vec::new(),
                    });
                    pending_fn = Some(fns.len() - 1);
                    i += 2;
                } else {
                    i += 1;
                }
            }
            _ => {
                if let Some(&(_, fn_idx)) = fn_stack.last() {
                    scan_body_token(tokens, i, &mut fns[fn_idx], &allowed);
                }
                i += 1;
            }
        }
    }

    FileIndex {
        crate_name: crate_name.to_string(),
        rel: rel.to_path_buf(),
        sans_io,
        fns,
        aliases,
    }
}

/// Records whatever the token at `i` contributes to the enclosing
/// function: call sites, needles, lock acquisitions.
fn scan_body_token(
    tokens: &[Token],
    i: usize,
    item: &mut FnItem,
    allowed: &impl Fn(usize, Rule) -> bool,
) {
    let t = &tokens[i];
    if t.kind != TokenKind::Ident {
        return;
    }
    let next = tokens.get(i + 1);
    let prev = i.checked_sub(1).map(|j| &tokens[j]);
    let line = t.line;

    // Macro invocation: `name!(…)` / `name![…]`.
    if next.is_some_and(|n| n.is_punct("!")) {
        if ALLOC_MACROS.contains(&t.text.as_str()) && !allowed(line, Rule::HotAlloc) {
            item.allocs.push(Needle {
                what: format!("{}!", t.text),
                line,
            });
        }
        return;
    }

    // Determinism needles by bare ident (token-level L2 equivalents).
    if (t.text == "HashMap" || t.text == "HashSet") && !allowed(line, Rule::Taint) {
        item.dets.push(Needle {
            what: t.text.clone(),
            line,
        });
    }

    // IO needles: `thread::…`, `fs::…`, `mpsc::…`, `net::…`, socket types.
    let qualifies_module = next.is_some_and(|n| n.is_punct("::"));
    if ((IO_MODULES.contains(&t.text.as_str()) && qualifies_module)
        || IO_TYPES.contains(&t.text.as_str()))
        && !allowed(line, Rule::SansIo)
    {
        item.ios.push(Needle {
            what: if qualifies_module {
                format!("{}::", t.text)
            } else {
                t.text.clone()
            },
            line,
        });
    }

    // From here on: call sites, `name(…)`.
    if !next.is_some_and(|n| n.is_punct("(")) || CALL_KEYWORDS.contains(&t.text.as_str()) {
        return;
    }
    let mut qualifier = None;
    let mut receiver = None;
    match prev {
        Some(p) if p.is_punct("::") => {
            qualifier = i
                .checked_sub(2)
                .map(|j| &tokens[j])
                .filter(|q| q.kind == TokenKind::Ident)
                .map(|q| q.text.clone());
        }
        Some(p) if p.is_punct(".") => {
            receiver = Some(receiver_ident(tokens, i - 1));
        }
        _ => {}
    }

    let name = t.text.as_str();
    // Path-allocation needles (`Box::new`, `Vec::with_capacity`, …).
    if let Some(q) = &qualifier {
        if ALLOC_PATHS.iter().any(|(ty, m)| ty == q && *m == name) && !allowed(line, Rule::HotAlloc)
        {
            item.allocs.push(Needle {
                what: format!("{q}::{name}"),
                line,
            });
        }
        // Clock reads are both IO (L9) and determinism (L11) needles.
        if (q == "Instant" || q == "SystemTime") && name == "now" {
            if !allowed(line, Rule::SansIo) {
                item.ios.push(Needle {
                    what: format!("{q}::now"),
                    line,
                });
            }
            if !allowed(line, Rule::Taint) {
                item.dets.push(Needle {
                    what: format!("{q}::now"),
                    line,
                });
            }
        }
        if q == "File" && (name == "open" || name == "create") && !allowed(line, Rule::SansIo) {
            item.ios.push(Needle {
                what: format!("File::{name}"),
                line,
            });
        }
    }
    // Method-allocation needles (`.push(`, `.collect(`, …).
    if receiver.is_some() && ALLOC_METHODS.contains(&name) && !allowed(line, Rule::HotAlloc) {
        item.allocs.push(Needle {
            what: format!("Vec/String-family `.{name}`"),
            line,
        });
    }
    if name == "thread_rng" && !allowed(line, Rule::Taint) {
        item.dets.push(Needle {
            what: "thread_rng".to_string(),
            line,
        });
    }
    // Zero-argument `.lock()` / `.read()` / `.write()` — the parking_lot
    // acquisition shape (guards take no arguments, so `session.read(txn,
    // item)`-style protocol methods never match).
    if matches!(name, "lock" | "read" | "write")
        && receiver.is_some()
        && tokens.get(i + 2).is_some_and(|c| c.is_punct(")"))
    {
        if !allowed(line, Rule::LockOrder) {
            item.locks.push(LockSite {
                recv: receiver.clone().unwrap_or_default(),
                line,
                pos: i,
            });
        }
        return; // a lock acquisition is not a call-graph edge
    }

    item.calls.push(CallSite {
        name: name.to_string(),
        qualifier,
        receiver,
        line,
        pos: i,
    });
}

/// Walks back from the `.` token at `dot` to the receiver ident, hopping
/// over one `[…]` / `(…)` group (`slots[idx].lock()` → `slots`).
fn receiver_ident(tokens: &[Token], dot: usize) -> String {
    let mut j = dot;
    while j > 0 {
        j -= 1;
        let t = &tokens[j];
        if t.is_punct("]") || t.is_punct(")") {
            let (open, close) = if t.text == "]" {
                ("[", "]")
            } else {
                ("(", ")")
            };
            let mut bal = 1;
            while j > 0 && bal > 0 {
                j -= 1;
                if tokens[j].is_punct(close) {
                    bal += 1;
                } else if tokens[j].is_punct(open) {
                    bal -= 1;
                }
            }
            continue;
        }
        if t.kind == TokenKind::Ident {
            return t.text.clone();
        }
        if t.is_punct(".") || t.is_punct("?") {
            continue;
        }
        break;
    }
    "<expr>".to_string()
}

/// Whether the `impl` at `i` is in type position (`-> impl Trait`,
/// `x: impl Trait`, `&impl Trait`, …) rather than opening an impl block.
fn type_position(tokens: &[Token], i: usize) -> bool {
    i.checked_sub(1).map(|j| &tokens[j]).is_some_and(|p| {
        matches!(
            p.text.as_str(),
            "->" | ":" | "+" | "(" | "," | "<" | "&" | "="
        )
    })
}

/// Extracts the target type from an impl header: the ident after `for`
/// when present (`impl Trait for Type`), else the first ident after the
/// generics (`impl Type`).
fn impl_target(tokens: &[Token], start: usize) -> Option<String> {
    let mut j = start;
    // Skip `<…>` generics on the impl itself.
    if tokens.get(j).is_some_and(|t| t.is_punct("<")) {
        let mut bal = 1;
        j += 1;
        while j < tokens.len() && bal > 0 {
            if tokens[j].is_punct("<") {
                bal += 1;
            } else if tokens[j].is_punct(">") {
                bal -= 1;
            }
            j += 1;
        }
    }
    let mut first: Option<String> = None;
    let mut after_for: Option<String> = None;
    let mut saw_for = false;
    while j < tokens.len() {
        let t = &tokens[j];
        if t.is_punct("{") || t.is_punct(";") {
            break;
        }
        if t.kind == TokenKind::Ident {
            if t.text == "for" {
                saw_for = true;
            } else if t.text == "where" {
                break;
            } else if saw_for && after_for.is_none() {
                // Skip path prefixes: keep updating until the path ends.
                after_for = Some(t.text.clone());
            } else if saw_for
                && tokens
                    .get(j.wrapping_sub(1))
                    .is_some_and(|p| p.is_punct("::"))
            {
                after_for = Some(t.text.clone());
            } else if !saw_for
                && (first.is_none()
                    || tokens
                        .get(j.wrapping_sub(1))
                        .is_some_and(|p| p.is_punct("::")))
            {
                first = Some(t.text.clone());
            }
        }
        j += 1;
    }
    after_for.or(first)
}

/// Whether the annotation `marker` sits in the comment of `fn_line`
/// itself or of the contiguous run of comment/attribute-only lines
/// directly above it.
fn has_marker_above(lines: &[SplitLine], fn_line: usize, marker: &str) -> bool {
    let idx = fn_line.saturating_sub(1);
    if lines
        .get(idx)
        .is_some_and(|l| has_directive(&l.comment, marker))
    {
        return true;
    }
    let mut j = idx;
    while j > 0 {
        j -= 1;
        let l = &lines[j];
        let code = l.code.trim();
        if !code.is_empty() && !code.starts_with("#[") && !code.starts_with("#!") {
            return false;
        }
        if has_directive(&l.comment, marker) {
            return true;
        }
        if !code.is_empty() {
            // attribute line without the marker: keep walking
            continue;
        }
        if l.comment.is_empty() && code.is_empty() {
            // blank line ends the attached block
            return false;
        }
    }
    false
}

/// Parses one `use …;` declaration starting at `tokens[0]` (the `use`
/// ident). Returns the token count consumed and the bindings found.
fn parse_use(tokens: &[Token], line: usize) -> (usize, Vec<UseAlias>) {
    let mut end = 1;
    while end < tokens.len() && !tokens[end].is_punct(";") {
        end += 1;
    }
    let body = &tokens[1..end];
    let mut out = Vec::new();
    let mut pos = 0;
    parse_use_tree(body, &mut pos, &mut Vec::new(), &mut out, line);
    (end + 1, out)
}

/// Recursive `use`-tree walk: `a::b::{c, d as e, f::*}`.
fn parse_use_tree(
    tokens: &[Token],
    pos: &mut usize,
    prefix: &mut Vec<String>,
    out: &mut Vec<UseAlias>,
    line: usize,
) {
    let mut segs: Vec<String> = Vec::new();
    loop {
        match tokens.get(*pos) {
            Some(t) if t.kind == TokenKind::Ident && t.text == "as" => {
                *pos += 1;
                if let Some(b) = tokens.get(*pos).filter(|b| b.kind == TokenKind::Ident) {
                    let target = join_path(prefix, &segs);
                    let renamed = segs.last().is_some_and(|last| *last != b.text);
                    out.push(UseAlias {
                        binding: b.text.clone(),
                        target,
                        renamed,
                        line,
                    });
                    *pos += 1;
                }
                return;
            }
            Some(t) if t.kind == TokenKind::Ident => {
                segs.push(t.text.clone());
                *pos += 1;
                if tokens.get(*pos).is_some_and(|n| n.is_punct("::")) {
                    *pos += 1;
                }
                continue; // next iteration sees `as`, `{`, `*`, or the end
            }
            Some(t) if t.is_punct("{") => {
                *pos += 1;
                let depth_before = prefix.len();
                prefix.extend(segs.iter().cloned());
                loop {
                    match tokens.get(*pos) {
                        Some(t) if t.is_punct("}") => {
                            *pos += 1;
                            break;
                        }
                        Some(t) if t.is_punct(",") => {
                            *pos += 1;
                        }
                        Some(_) => parse_use_tree(tokens, pos, prefix, out, line),
                        None => break,
                    }
                }
                prefix.truncate(depth_before);
                return;
            }
            Some(t) if t.is_punct("*") => {
                *pos += 1;
                return; // glob: introduces no single binding we track
            }
            _ => break,
        }
    }
    if let Some(last) = segs.last() {
        out.push(UseAlias {
            binding: last.clone(),
            target: join_path(prefix, &segs),
            renamed: false,
            line,
        });
    }
}

fn join_path(prefix: &[String], segs: &[String]) -> String {
    let mut parts: Vec<&str> = prefix.iter().map(String::as_str).collect();
    parts.extend(segs.iter().map(String::as_str));
    parts.join("::")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex::{lex_tokens, split_source, test_mask};

    fn index(src: &str) -> FileIndex {
        let lines = split_source(src);
        let mask = test_mask(&lines);
        let tokens = lex_tokens(&lines);
        let allows = vec![BTreeSet::new(); lines.len()];
        index_file(
            "demo",
            std::path::Path::new("crates/demo/src/lib.rs"),
            &lines,
            &mask,
            &tokens,
            &allows,
        )
    }

    #[test]
    fn fns_and_impl_types_are_indexed() {
        let fi = index(
            "struct G;\nimpl G {\n    fn inner(&self) {}\n}\nfn free() {}\nimpl Display for G {\n    fn fmt(&self) {}\n}\n",
        );
        let names: Vec<(&str, Option<&str>)> = fi
            .fns
            .iter()
            .map(|f| (f.name.as_str(), f.impl_type.as_deref()))
            .collect();
        assert_eq!(
            names,
            vec![("inner", Some("G")), ("free", None), ("fmt", Some("G"))]
        );
    }

    #[test]
    fn hot_marker_attaches_through_attributes() {
        let fi = index("// bpush-lint: hot_path\n#[inline]\nfn fast() {}\nfn cold() {}\n");
        assert!(fi.fns[0].hot);
        assert!(!fi.fns[1].hot);
    }

    #[test]
    fn calls_record_qualifier_and_receiver() {
        let fi = index("fn f(g: &G) {\n    g.step();\n    G::probe(1);\n    free(2);\n}\n");
        let calls = &fi.fns[0].calls;
        assert_eq!(calls[0].name, "step");
        assert_eq!(calls[0].receiver.as_deref(), Some("g"));
        assert_eq!(calls[1].name, "probe");
        assert_eq!(calls[1].qualifier.as_deref(), Some("G"));
        assert_eq!(calls[2].name, "free");
        assert!(calls[2].qualifier.is_none() && calls[2].receiver.is_none());
    }

    #[test]
    fn alloc_needles_are_found() {
        let fi = index("fn f(v: &mut Vec<u32>) {\n    v.push(1);\n    let b = Box::new(2);\n    let s = format!(\"x\");\n}\n");
        let whats: Vec<&str> = fi.fns[0].allocs.iter().map(|n| n.what.as_str()).collect();
        assert!(whats.iter().any(|w| w.contains("push")));
        assert!(whats.contains(&"Box::new"));
        assert!(whats.contains(&"format!"));
    }

    #[test]
    fn io_needles_are_found() {
        let fi = index(
            "fn f() {\n    let t = std::time::Instant::now();\n    std::thread::sleep(d);\n}\n",
        );
        let whats: Vec<&str> = fi.fns[0].ios.iter().map(|n| n.what.as_str()).collect();
        assert!(whats.contains(&"Instant::now"));
        assert!(whats.contains(&"thread::"));
    }

    #[test]
    fn zero_arg_lock_calls_are_locks_not_calls() {
        let fi = index(
            "fn f(&self) {\n    let g = self.slots[idx].lock();\n    session.read(txn, item);\n}\n",
        );
        let f = &fi.fns[0];
        assert_eq!(f.locks.len(), 1);
        assert_eq!(f.locks[0].recv, "slots");
        // `session.read(txn, item)` takes arguments: a call, not a lock.
        assert!(f.calls.iter().any(|c| c.name == "read"));
    }

    #[test]
    fn use_aliases_track_renames_and_groups() {
        let fi = index(
            "use std::time::Instant as Stamp;\nuse std::collections::{BTreeMap, HashMap as Plain};\n",
        );
        let got: Vec<(&str, &str, bool)> = fi
            .aliases
            .iter()
            .map(|a| (a.binding.as_str(), a.target.as_str(), a.renamed))
            .collect();
        assert_eq!(
            got,
            vec![
                ("Stamp", "std::time::Instant", true),
                ("BTreeMap", "std::collections::BTreeMap", false),
                ("Plain", "std::collections::HashMap", true),
            ]
        );
    }

    #[test]
    fn test_mask_marks_fns_and_drops_aliases() {
        let fi = index(
            "fn live() {}\n#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n    fn t() {}\n}\n",
        );
        assert!(!fi.fns[0].is_test);
        assert!(fi.fns[1].is_test);
        assert!(fi.aliases.is_empty());
    }

    #[test]
    fn sans_io_marker_is_file_level() {
        let fi = index("//! Module docs.\n// bpush-lint: sans_io — protocol core\nfn f() {}\n");
        assert!(fi.sans_io);
    }

    #[test]
    fn trait_method_decls_have_no_body() {
        let fi = index(
            "trait T {\n    fn sig(&self) -> u32;\n    fn with_default(&self) { helper(); }\n}\n",
        );
        assert_eq!(fi.fns.len(), 2);
        assert!(fi.fns[0].calls.is_empty());
        assert_eq!(fi.fns[1].calls[0].name, "helper");
    }
}
