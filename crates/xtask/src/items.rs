//! Item indexer: one linear scan over a file's token stream that
//! extracts everything the interprocedural rules need — function items
//! with their call sites, allocation / IO / determinism needles, lock
//! acquisitions, implicit-panic sites, raw index/slice accesses,
//! tick-typed arithmetic, `use` aliases, and the `bpush-lint:`
//! annotations (`hot_path`, `sans_io`, `protocol_enum`, `decode_path`).
//!
//! Two token-stream side scans feed the dataflow rules: enum
//! definitions with their variant lists ([`EnumDef`], L13) and `match`
//! expressions with their arm patterns ([`MatchFact`], L13).
//!
//! The indexer is deliberately approximate (no type inference): calls
//! are recorded by name plus whatever qualifier or receiver the tokens
//! show, and [`crate::callgraph`] resolves them against the workspace
//! with crate-dependency scoping and impl-type preference.

use std::collections::BTreeSet;
use std::path::PathBuf;

use crate::lex::{SplitLine, Token, TokenKind};
use crate::Rule;

/// Directive name marking a function as hot-path (L8 contract holder).
pub const HOT_PATH_MARKER: &str = "hot_path";
/// Directive name declaring a whole file protocol-core (L9 contract).
pub const SANS_IO_MARKER: &str = "sans_io";
/// Directive name marking an enum as protocol vocabulary: every match
/// over it must name every variant (L13 contract holder).
pub const PROTOCOL_ENUM_MARKER: &str = "protocol_enum";
/// Directive name declaring a whole file part of the wire decode path:
/// input bytes may only be touched through checked `take_*` accessors
/// (L14 contract).
pub const DECODE_PATH_MARKER: &str = "decode_path";

/// Whether `comment` *is* the directive `name` — i.e. it starts with
/// `bpush-lint: <name>`. The splitter strips the `//` leader, so a doc
/// comment arrives starting with `/` (from `///`) or `!` (from `//!`):
/// those are prose, never directives, which is what lets this tool
/// document itself.
fn has_directive(comment: &str, name: &str) -> bool {
    if comment.starts_with('/') || comment.starts_with('!') {
        return false;
    }
    comment
        .trim_start()
        .strip_prefix("bpush-lint:")
        .map(str::trim_start)
        .is_some_and(|rest| rest.starts_with(name))
}

/// Method names that allocate on (at least) first call — the L8 needle
/// set for `.name(` receivers.
const ALLOC_METHODS: &[&str] = &[
    "push",
    "push_back",
    "insert",
    "append",
    "to_vec",
    "to_owned",
    "to_string",
    "collect",
    "clone",
    "extend",
    "extend_from_slice",
    "resize",
    "reserve",
    "with_capacity",
];

/// `(Type, constructor)` pairs that allocate — the L8 needle set for
/// `Type::name(` paths.
const ALLOC_PATHS: &[(&str, &str)] = &[
    ("Box", "new"),
    ("String", "from"),
    ("String", "with_capacity"),
    ("Vec", "from"),
    ("Vec", "with_capacity"),
    ("HashMap", "with_capacity"),
    ("HashSet", "with_capacity"),
    ("Rc", "new"),
    ("Arc", "new"),
];

/// Macros that allocate (L8).
const ALLOC_MACROS: &[&str] = &["vec", "format"];

/// Module path segments whose mere mention (`seg::…`) is an IO needle
/// (L9): threads, channels, filesystem, sockets.
const IO_MODULES: &[&str] = &["thread", "mpsc", "fs", "net"];

/// Type idents that are IO needles on sight (L9).
const IO_TYPES: &[&str] = &["TcpStream", "TcpListener", "UdpSocket"];

/// Accessor method names that read the raw counter out of a tick-typed
/// value (`Cycle::number`, `ItemId::index`, …). A `+`/`-`/`*` with such
/// a call on either side is an L15 overflow fact.
const TICK_ACCESSORS: &[&str] = &["number", "value", "index", "seq"];

/// Newtype wrappers around monotonically growing counters. Inside an
/// `impl` of one of these, bare `self.0 + …` arithmetic is an L15 fact.
const TICK_TYPES: &[&str] = &[
    "Cycle", "Slot", "TxnId", "QueryId", "ItemId", "BucketId", "ClientId",
];

/// Identifiers never treated as call sites even when followed by `(`.
pub(crate) const CALL_KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "loop", "match", "return", "break", "continue", "move", "in",
    "as", "let", "mut", "ref", "fn", "pub", "use", "mod", "struct", "enum", "trait", "impl",
    "type", "const", "static", "where", "unsafe", "async", "await", "dyn", "crate", "super",
    "Some", "None", "Ok", "Err", "Fn", "FnMut", "FnOnce",
];

/// A resolved-by-name call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Callee name as written.
    pub name: String,
    /// `Type` in `Type::name(…)` (the path segment before `::`).
    pub qualifier: Option<String>,
    /// Receiver ident in `recv.name(…)` method calls (`self` included).
    pub receiver: Option<String>,
    /// 1-based source line.
    pub line: usize,
    /// Position in the file token stream (orders calls vs locks, L10).
    pub pos: usize,
}

/// One needle hit (allocation, IO, or determinism construct).
#[derive(Debug, Clone)]
pub struct Needle {
    /// What was matched, as shown in diagnostics (e.g. `Vec::push`).
    pub what: String,
    /// 1-based source line.
    pub line: usize,
}

/// One zero-argument `.lock()` / `.read()` / `.write()` acquisition.
#[derive(Debug, Clone)]
pub struct LockSite {
    /// Receiver ident the guard is taken from (lock identity, with the
    /// crate name, for L10).
    pub recv: String,
    /// 1-based source line.
    pub line: usize,
    /// Position in the file token stream (orders locks vs calls).
    pub pos: usize,
}

/// One raw index/slice expression (`recv[…]`). Shared by L12 (an index
/// is an implicit panic site) and L14 (an index is a raw byte access in
/// decode files), each with its own escape hatch.
#[derive(Debug, Clone)]
pub struct IndexSite {
    /// What was matched, as shown in diagnostics (e.g. `` `bytes[…]` ``).
    pub what: String,
    /// 1-based source line.
    pub line: usize,
    /// Suppressed for L12 via `allow(panic-reach)` or `allow(panic)`.
    pub allowed_panic: bool,
    /// Suppressed for L14 via `allow(decode-bounds)`.
    pub allowed_decode: bool,
}

/// One `enum` definition with its variant list (the L13 index).
#[derive(Debug, Clone)]
pub struct EnumDef {
    /// Enum name as written.
    pub name: String,
    /// 1-based line of the `enum` keyword.
    pub line: usize,
    /// Variant names in declaration order.
    pub variants: Vec<String>,
    /// Carries the `bpush-lint: protocol_enum` annotation (L13).
    pub protocol: bool,
}

/// One arm of a `match` expression.
#[derive(Debug, Clone)]
pub struct ArmFact {
    /// 1-based line of the arm's first pattern token.
    pub line: usize,
    /// Pattern token texts as written, guard included (`_`, `if`, …).
    pub pat: Vec<String>,
    /// Suppressed via `allow(state-total)` on the arm line.
    pub allowed: bool,
}

/// One `match` expression with its arms (L13 facts).
#[derive(Debug, Clone)]
pub struct MatchFact {
    /// 1-based line of the `match` keyword.
    pub line: usize,
    /// Arms in source order.
    pub arms: Vec<ArmFact>,
    /// The `match` sits inside a `#[cfg(test)]` region.
    pub is_test: bool,
}

/// One function item with everything the L8–L15 drivers consume.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Function name.
    pub name: String,
    /// Enclosing `impl` target type, when inside an impl block.
    pub impl_type: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Declared inside a `#[cfg(test)]` region.
    pub is_test: bool,
    /// Carries the `bpush-lint: hot_path` annotation (L8).
    pub hot: bool,
    /// Call sites in body order.
    pub calls: Vec<CallSite>,
    /// Un-suppressed allocation needles (L8).
    pub allocs: Vec<Needle>,
    /// Un-suppressed IO needles (L9).
    pub ios: Vec<Needle>,
    /// Un-suppressed determinism needles (L11 cross-crate leg).
    pub dets: Vec<Needle>,
    /// Un-suppressed lock acquisitions (L10).
    pub locks: Vec<LockSite>,
    /// Un-suppressed implicit-panic sites other than indexing:
    /// divisions with non-constant divisors, `unreachable!` (L12).
    pub panics: Vec<Needle>,
    /// Raw index/slice expressions, with per-rule allow flags (L12/L14).
    pub indexes: Vec<IndexSite>,
    /// Un-suppressed unchecked arithmetic on tick-typed values (L15).
    pub ticks: Vec<Needle>,
}

/// A binding introduced by a `use` declaration.
#[derive(Debug, Clone)]
pub struct UseAlias {
    /// The name the declaration brings into scope.
    pub binding: String,
    /// The full path, `::`-joined, as written.
    pub target: String,
    /// Whether an `as` rename changed the binding from the path's last
    /// segment — the indirection L2's text match cannot see (L11).
    pub renamed: bool,
    /// 1-based source line.
    pub line: usize,
}

/// Everything indexed from one source file.
#[derive(Debug, Clone)]
pub struct FileIndex {
    /// Directory name of the crate under `crates/`.
    pub crate_name: String,
    /// Path relative to the workspace root.
    pub rel: PathBuf,
    /// The file carries the `bpush-lint: sans_io` declaration (L9).
    pub sans_io: bool,
    /// The file carries the `bpush-lint: decode_path` declaration (L14).
    pub decode_path: bool,
    /// Function items in declaration order.
    pub fns: Vec<FnItem>,
    /// `use` bindings declared outside `#[cfg(test)]` regions.
    pub aliases: Vec<UseAlias>,
    /// Enum definitions with their variant lists (L13).
    pub enums: Vec<EnumDef>,
    /// `match` expressions with their arm shapes (L13).
    pub matches: Vec<MatchFact>,
}

/// Indexes one file's token stream. `allows` is the per-line allow set
/// from the annotation pass; needles and locks on allowed lines are
/// dropped here so every downstream rule sees only live hits.
pub fn index_file(
    crate_name: &str,
    rel: &std::path::Path,
    lines: &[SplitLine],
    mask: &[bool],
    tokens: &[Token],
    allows: &[BTreeSet<Rule>],
) -> FileIndex {
    let sans_io = lines
        .iter()
        .any(|l| has_directive(&l.comment, SANS_IO_MARKER));
    let decode_path = lines
        .iter()
        .any(|l| has_directive(&l.comment, DECODE_PATH_MARKER));
    let allowed = |line: usize, rule: Rule| {
        allows
            .get(line.saturating_sub(1))
            .is_some_and(|set| set.contains(&rule))
    };
    let masked = |line: usize| mask.get(line.saturating_sub(1)).copied().unwrap_or(false);

    let mut fns: Vec<FnItem> = Vec::new();
    let mut aliases: Vec<UseAlias> = Vec::new();

    // (frame open depth, fn index) for fn bodies; impl frames carry the
    // target type. `pending_*` bridges the gap between a header and its
    // opening brace.
    let mut depth: i64 = 0;
    let mut fn_stack: Vec<(i64, usize)> = Vec::new();
    let mut impl_stack: Vec<(i64, Option<String>)> = Vec::new();
    let mut pending_fn: Option<usize> = None;
    let mut pending_impl: Option<Option<String>> = None;

    let mut i = 0;
    while i < tokens.len() {
        let t = &tokens[i];
        match t.kind {
            TokenKind::Punct if t.text == "{" => {
                depth += 1;
                if let Some(fn_idx) = pending_fn.take() {
                    fn_stack.push((depth, fn_idx));
                } else if let Some(target) = pending_impl.take() {
                    impl_stack.push((depth, target));
                }
                i += 1;
            }
            TokenKind::Punct if t.text == "}" => {
                depth -= 1;
                while fn_stack.last().is_some_and(|(d, _)| *d > depth) {
                    fn_stack.pop();
                }
                while impl_stack.last().is_some_and(|(d, _)| *d > depth) {
                    impl_stack.pop();
                }
                i += 1;
            }
            TokenKind::Punct if t.text == ";" => {
                // A trait method declaration ends without a body.
                pending_fn = None;
                i += 1;
            }
            TokenKind::Ident if t.text == "use" && pending_fn.is_none() => {
                let (consumed, mut found) = parse_use(&tokens[i..], t.line);
                if !masked(t.line) {
                    aliases.append(&mut found);
                }
                i += consumed;
            }
            TokenKind::Ident if t.text == "impl" && !type_position(tokens, i) => {
                pending_impl = Some(impl_target(tokens, i + 1));
                i += 1;
            }
            TokenKind::Ident if t.text == "fn" => {
                if let Some(name_tok) = tokens.get(i + 1).filter(|n| n.kind == TokenKind::Ident) {
                    let impl_type = impl_stack.last().and_then(|(_, t)| t.clone());
                    fns.push(FnItem {
                        name: name_tok.text.clone(),
                        impl_type,
                        line: t.line,
                        is_test: masked(t.line),
                        hot: has_marker_above(lines, t.line, HOT_PATH_MARKER),
                        calls: Vec::new(),
                        allocs: Vec::new(),
                        ios: Vec::new(),
                        dets: Vec::new(),
                        locks: Vec::new(),
                        panics: Vec::new(),
                        indexes: Vec::new(),
                        ticks: Vec::new(),
                    });
                    pending_fn = Some(fns.len() - 1);
                    i += 2;
                } else {
                    i += 1;
                }
            }
            _ => {
                if let Some(&(_, fn_idx)) = fn_stack.last() {
                    scan_body_token(tokens, i, &mut fns[fn_idx], &allowed);
                }
                i += 1;
            }
        }
    }

    FileIndex {
        crate_name: crate_name.to_string(),
        rel: rel.to_path_buf(),
        sans_io,
        decode_path,
        fns,
        aliases,
        enums: extract_enums(tokens, lines, mask),
        matches: extract_matches(tokens, mask, &allowed),
    }
}

/// Records whatever the token at `i` contributes to the enclosing
/// function: call sites, needles, lock acquisitions.
fn scan_body_token(
    tokens: &[Token],
    i: usize,
    item: &mut FnItem,
    allowed: &impl Fn(usize, Rule) -> bool,
) {
    let t = &tokens[i];
    if t.kind == TokenKind::Punct {
        scan_punct_token(tokens, i, item, allowed);
        return;
    }
    if t.kind != TokenKind::Ident {
        return;
    }
    let next = tokens.get(i + 1);
    let prev = i.checked_sub(1).map(|j| &tokens[j]);
    let line = t.line;

    // Macro invocation: `name!(…)` / `name![…]`.
    if next.is_some_and(|n| n.is_punct("!")) {
        if ALLOC_MACROS.contains(&t.text.as_str()) && !allowed(line, Rule::HotAlloc) {
            item.allocs.push(Needle {
                what: format!("{}!", t.text),
                line,
            });
        }
        // `unreachable!` asserts a dead branch: recorded as a panic
        // fact so L12 can attribute it to the entry points reaching it.
        if t.text == "unreachable"
            && !allowed(line, Rule::PanicReach)
            && !allowed(line, Rule::Panic)
        {
            item.panics.push(Needle {
                what: "unreachable!".to_string(),
                line,
            });
        }
        return;
    }

    // Determinism needles by bare ident (token-level L2 equivalents).
    if (t.text == "HashMap" || t.text == "HashSet") && !allowed(line, Rule::Taint) {
        item.dets.push(Needle {
            what: t.text.clone(),
            line,
        });
    }

    // IO needles: `thread::…`, `fs::…`, `mpsc::…`, `net::…`, socket types.
    let qualifies_module = next.is_some_and(|n| n.is_punct("::"));
    if ((IO_MODULES.contains(&t.text.as_str()) && qualifies_module)
        || IO_TYPES.contains(&t.text.as_str()))
        && !allowed(line, Rule::SansIo)
    {
        item.ios.push(Needle {
            what: if qualifies_module {
                format!("{}::", t.text)
            } else {
                t.text.clone()
            },
            line,
        });
    }

    // From here on: call sites, `name(…)`.
    if !next.is_some_and(|n| n.is_punct("(")) || CALL_KEYWORDS.contains(&t.text.as_str()) {
        return;
    }
    let mut qualifier = None;
    let mut receiver = None;
    match prev {
        Some(p) if p.is_punct("::") => {
            qualifier = i
                .checked_sub(2)
                .map(|j| &tokens[j])
                .filter(|q| q.kind == TokenKind::Ident)
                .map(|q| q.text.clone());
        }
        Some(p) if p.is_punct(".") => {
            receiver = Some(receiver_ident(tokens, i - 1));
        }
        _ => {}
    }

    let name = t.text.as_str();
    // Path-allocation needles (`Box::new`, `Vec::with_capacity`, …).
    if let Some(q) = &qualifier {
        if ALLOC_PATHS.iter().any(|(ty, m)| ty == q && *m == name) && !allowed(line, Rule::HotAlloc)
        {
            item.allocs.push(Needle {
                what: format!("{q}::{name}"),
                line,
            });
        }
        // Clock reads are both IO (L9) and determinism (L11) needles.
        if (q == "Instant" || q == "SystemTime") && name == "now" {
            if !allowed(line, Rule::SansIo) {
                item.ios.push(Needle {
                    what: format!("{q}::now"),
                    line,
                });
            }
            if !allowed(line, Rule::Taint) {
                item.dets.push(Needle {
                    what: format!("{q}::now"),
                    line,
                });
            }
        }
        if q == "File" && (name == "open" || name == "create") && !allowed(line, Rule::SansIo) {
            item.ios.push(Needle {
                what: format!("File::{name}"),
                line,
            });
        }
    }
    // Method-allocation needles (`.push(`, `.collect(`, …).
    if receiver.is_some() && ALLOC_METHODS.contains(&name) && !allowed(line, Rule::HotAlloc) {
        item.allocs.push(Needle {
            what: format!("Vec/String-family `.{name}`"),
            line,
        });
    }
    if name == "thread_rng" && !allowed(line, Rule::Taint) {
        item.dets.push(Needle {
            what: "thread_rng".to_string(),
            line,
        });
    }
    // Zero-argument `.lock()` / `.read()` / `.write()` — the parking_lot
    // acquisition shape (guards take no arguments, so `session.read(txn,
    // item)`-style protocol methods never match).
    if matches!(name, "lock" | "read" | "write")
        && receiver.is_some()
        && tokens.get(i + 2).is_some_and(|c| c.is_punct(")"))
    {
        if !allowed(line, Rule::LockOrder) {
            item.locks.push(LockSite {
                recv: receiver.clone().unwrap_or_default(),
                line,
                pos: i,
            });
        }
        return; // a lock acquisition is not a call-graph edge
    }

    item.calls.push(CallSite {
        name: name.to_string(),
        qualifier,
        receiver,
        line,
        pos: i,
    });
}

/// Records what a punctuation token contributes to the enclosing
/// function: index/slice sites (`[`), division panic sites (`/`, `%`),
/// and unchecked tick arithmetic (`+`, `-`, `*`).
fn scan_punct_token(
    tokens: &[Token],
    i: usize,
    item: &mut FnItem,
    allowed: &impl Fn(usize, Rule) -> bool,
) {
    let t = &tokens[i];
    let line = t.line;
    let prev = i.checked_sub(1).map(|j| &tokens[j]);

    // Index/slice expression: `recv[…]`, `call()[…]`, `a[…][…]`. The
    // previous token separates these from array literals (`= [`),
    // types (`: [`), attributes (`#[`), macros (`vec![`), borrows
    // (`&[`), and destructuring (`let [`).
    if t.text == "[" {
        let base = match prev {
            Some(p) if p.kind == TokenKind::Ident && !CALL_KEYWORDS.contains(&p.text.as_str()) => {
                Some(p.text.clone())
            }
            Some(p) if p.is_punct("]") || p.is_punct(")") => Some("<expr>".to_string()),
            _ => None,
        };
        if let Some(base) = base {
            item.indexes.push(IndexSite {
                what: format!("`{base}[…]`"),
                line,
                allowed_panic: allowed(line, Rule::PanicReach) || allowed(line, Rule::Panic),
                allowed_decode: allowed(line, Rule::DecodeBounds),
            });
        }
        return;
    }

    // Division/remainder with a non-constant divisor is an implicit
    // divide-by-zero panic site. Float division never panics: skip when
    // the dividend is a float literal or an `f64`/`f32` appears just
    // ahead (`as f64`-style casts).
    if t.text == "/" || t.text == "%" {
        if !binary_op_position(prev) {
            return;
        }
        if prev.is_some_and(|p| p.kind == TokenKind::Literal && p.text.contains('.')) {
            return;
        }
        if tokens
            .get(i + 1)
            .is_some_and(|n| n.kind == TokenKind::Literal && nonzero_literal(&n.text))
        {
            return;
        }
        for k in 1..=4 {
            if tokens
                .get(i + k)
                .is_some_and(|n| n.kind == TokenKind::Ident && (n.text == "f64" || n.text == "f32"))
            {
                return;
            }
        }
        if !allowed(line, Rule::PanicReach) && !allowed(line, Rule::Panic) {
            item.panics.push(Needle {
                what: format!("`{}` with non-constant divisor", t.text),
                line,
            });
        }
        return;
    }

    // Unchecked arithmetic where an operand is tick-sourced: either a
    // `.number()`-style accessor call on one side, or bare `self.0`
    // inside an impl of a tick newtype.
    if matches!(t.text.as_str(), "+" | "-" | "*") && binary_op_position(prev) {
        let tick =
            tick_sourced_lhs(tokens, i, item.impl_type.as_deref()) || tick_sourced_rhs(tokens, i);
        if tick && !allowed(line, Rule::Overflow) {
            item.ticks.push(Needle {
                what: format!("unchecked `{}` on a tick-typed value", t.text),
                line,
            });
        }
    }
}

/// Whether the token before an operator puts it in binary position: an
/// operand (ident, literal) or the close of a call/index expression.
/// Anything else (`=`, `(`, `,`, a unary `-`, …) means the operator is
/// unary or part of a signature.
fn binary_op_position(prev: Option<&Token>) -> bool {
    prev.is_some_and(|p| match p.kind {
        TokenKind::Ident => !CALL_KEYWORDS.contains(&p.text.as_str()),
        TokenKind::Literal => true,
        TokenKind::Punct => p.text == ")" || p.text == "]",
        TokenKind::Lifetime => false,
    })
}

/// Whether an integer literal token is provably non-zero (so dividing
/// by it cannot panic). Handles `_` separators and `0x`/`0o`/`0b`
/// prefixes; type suffixes ride along harmlessly.
fn nonzero_literal(text: &str) -> bool {
    let t: String = text.chars().filter(|&c| c != '_').collect();
    let digits = t
        .strip_prefix("0x")
        .or_else(|| t.strip_prefix("0X"))
        .or_else(|| t.strip_prefix("0o"))
        .or_else(|| t.strip_prefix("0b"))
        .unwrap_or(&t);
    digits
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.')
        .any(|c| c.is_ascii_digit() && c != '0')
}

/// Whether the operand ending right before the operator at `op` is
/// tick-sourced: `….number()`-style accessor call (walk back over the
/// close paren), or `self.0` inside an impl of a tick newtype.
fn tick_sourced_lhs(tokens: &[Token], op: usize, impl_type: Option<&str>) -> bool {
    let Some(j) = op.checked_sub(1) else {
        return false;
    };
    let p = &tokens[j];
    if p.is_punct(")") {
        let mut bal = 1;
        let mut k = j;
        while k > 0 && bal > 0 {
            k -= 1;
            if tokens[k].is_punct(")") {
                bal += 1;
            } else if tokens[k].is_punct("(") {
                bal -= 1;
            }
        }
        if bal != 0 || k == 0 {
            return false;
        }
        let acc = &tokens[k - 1];
        return acc.kind == TokenKind::Ident
            && TICK_ACCESSORS.contains(&acc.text.as_str())
            && k >= 2
            && tokens[k - 2].is_punct(".");
    }
    if p.kind == TokenKind::Literal && p.text == "0" {
        return j >= 2
            && tokens[j - 1].is_punct(".")
            && tokens[j - 2].is_ident("self")
            && impl_type.is_some_and(|t| TICK_TYPES.contains(&t));
    }
    false
}

/// Whether the operand starting right after the operator at `op` is
/// tick-sourced: a forward walk over `ident`/`.` tokens looking for a
/// zero-argument `.number()`-style accessor call. Any other token
/// (including `::`, so `u64::from(…)` conversions stay exempt) ends
/// the operand.
fn tick_sourced_rhs(tokens: &[Token], op: usize) -> bool {
    let mut j = op + 1;
    while j < tokens.len() {
        let t = &tokens[j];
        if t.is_punct(".") {
            if tokens.get(j + 1).is_some_and(|a| {
                a.kind == TokenKind::Ident && TICK_ACCESSORS.contains(&a.text.as_str())
            }) && tokens.get(j + 2).is_some_and(|o| o.is_punct("("))
                && tokens.get(j + 3).is_some_and(|c| c.is_punct(")"))
            {
                return true;
            }
            j += 1;
            continue;
        }
        if t.kind == TokenKind::Ident && !CALL_KEYWORDS.contains(&t.text.as_str()) {
            j += 1;
            continue;
        }
        return false;
    }
    false
}

/// Walks back from the `.` token at `dot` to the receiver ident, hopping
/// over one `[…]` / `(…)` group (`slots[idx].lock()` → `slots`).
fn receiver_ident(tokens: &[Token], dot: usize) -> String {
    let mut j = dot;
    while j > 0 {
        j -= 1;
        let t = &tokens[j];
        if t.is_punct("]") || t.is_punct(")") {
            let (open, close) = if t.text == "]" {
                ("[", "]")
            } else {
                ("(", ")")
            };
            let mut bal = 1;
            while j > 0 && bal > 0 {
                j -= 1;
                if tokens[j].is_punct(close) {
                    bal += 1;
                } else if tokens[j].is_punct(open) {
                    bal -= 1;
                }
            }
            continue;
        }
        if t.kind == TokenKind::Ident {
            return t.text.clone();
        }
        if t.is_punct(".") || t.is_punct("?") {
            continue;
        }
        break;
    }
    "<expr>".to_string()
}

/// Whether the `impl` at `i` is in type position (`-> impl Trait`,
/// `x: impl Trait`, `&impl Trait`, …) rather than opening an impl block.
fn type_position(tokens: &[Token], i: usize) -> bool {
    i.checked_sub(1).map(|j| &tokens[j]).is_some_and(|p| {
        matches!(
            p.text.as_str(),
            "->" | ":" | "+" | "(" | "," | "<" | "&" | "="
        )
    })
}

/// Extracts the target type from an impl header: the ident after `for`
/// when present (`impl Trait for Type`), else the first ident after the
/// generics (`impl Type`).
fn impl_target(tokens: &[Token], start: usize) -> Option<String> {
    let mut j = start;
    // Skip `<…>` generics on the impl itself.
    if tokens.get(j).is_some_and(|t| t.is_punct("<")) {
        let mut bal = 1;
        j += 1;
        while j < tokens.len() && bal > 0 {
            if tokens[j].is_punct("<") {
                bal += 1;
            } else if tokens[j].is_punct(">") {
                bal -= 1;
            }
            j += 1;
        }
    }
    let mut first: Option<String> = None;
    let mut after_for: Option<String> = None;
    let mut saw_for = false;
    while j < tokens.len() {
        let t = &tokens[j];
        if t.is_punct("{") || t.is_punct(";") {
            break;
        }
        if t.kind == TokenKind::Ident {
            if t.text == "for" {
                saw_for = true;
            } else if t.text == "where" {
                break;
            } else if saw_for && after_for.is_none() {
                // Skip path prefixes: keep updating until the path ends.
                after_for = Some(t.text.clone());
            } else if saw_for
                && tokens
                    .get(j.wrapping_sub(1))
                    .is_some_and(|p| p.is_punct("::"))
            {
                after_for = Some(t.text.clone());
            } else if !saw_for
                && (first.is_none()
                    || tokens
                        .get(j.wrapping_sub(1))
                        .is_some_and(|p| p.is_punct("::")))
            {
                first = Some(t.text.clone());
            }
        }
        j += 1;
    }
    after_for.or(first)
}

/// Whether the annotation `marker` sits in the comment of `fn_line`
/// itself or of the contiguous run of comment/attribute-only lines
/// directly above it.
fn has_marker_above(lines: &[SplitLine], fn_line: usize, marker: &str) -> bool {
    let idx = fn_line.saturating_sub(1);
    if lines
        .get(idx)
        .is_some_and(|l| has_directive(&l.comment, marker))
    {
        return true;
    }
    let mut j = idx;
    while j > 0 {
        j -= 1;
        let l = &lines[j];
        let code = l.code.trim();
        if !code.is_empty() && !code.starts_with("#[") && !code.starts_with("#!") {
            return false;
        }
        if has_directive(&l.comment, marker) {
            return true;
        }
        if !code.is_empty() {
            // attribute line without the marker: keep walking
            continue;
        }
        if l.comment.is_empty() && code.is_empty() {
            // blank line ends the attached block
            return false;
        }
    }
    false
}

/// Parses one `use …;` declaration starting at `tokens[0]` (the `use`
/// ident). Returns the token count consumed and the bindings found.
fn parse_use(tokens: &[Token], line: usize) -> (usize, Vec<UseAlias>) {
    let mut end = 1;
    while end < tokens.len() && !tokens[end].is_punct(";") {
        end += 1;
    }
    let body = &tokens[1..end];
    let mut out = Vec::new();
    let mut pos = 0;
    parse_use_tree(body, &mut pos, &mut Vec::new(), &mut out, line);
    (end + 1, out)
}

/// Recursive `use`-tree walk: `a::b::{c, d as e, f::*}`.
fn parse_use_tree(
    tokens: &[Token],
    pos: &mut usize,
    prefix: &mut Vec<String>,
    out: &mut Vec<UseAlias>,
    line: usize,
) {
    let mut segs: Vec<String> = Vec::new();
    loop {
        match tokens.get(*pos) {
            Some(t) if t.kind == TokenKind::Ident && t.text == "as" => {
                *pos += 1;
                if let Some(b) = tokens.get(*pos).filter(|b| b.kind == TokenKind::Ident) {
                    let target = join_path(prefix, &segs);
                    let renamed = segs.last().is_some_and(|last| *last != b.text);
                    out.push(UseAlias {
                        binding: b.text.clone(),
                        target,
                        renamed,
                        line,
                    });
                    *pos += 1;
                }
                return;
            }
            Some(t) if t.kind == TokenKind::Ident => {
                segs.push(t.text.clone());
                *pos += 1;
                if tokens.get(*pos).is_some_and(|n| n.is_punct("::")) {
                    *pos += 1;
                }
                continue; // next iteration sees `as`, `{`, `*`, or the end
            }
            Some(t) if t.is_punct("{") => {
                *pos += 1;
                let depth_before = prefix.len();
                prefix.extend(segs.iter().cloned());
                loop {
                    match tokens.get(*pos) {
                        Some(t) if t.is_punct("}") => {
                            *pos += 1;
                            break;
                        }
                        Some(t) if t.is_punct(",") => {
                            *pos += 1;
                        }
                        Some(_) => parse_use_tree(tokens, pos, prefix, out, line),
                        None => break,
                    }
                }
                prefix.truncate(depth_before);
                return;
            }
            Some(t) if t.is_punct("*") => {
                *pos += 1;
                return; // glob: introduces no single binding we track
            }
            _ => break,
        }
    }
    if let Some(last) = segs.last() {
        out.push(UseAlias {
            binding: last.clone(),
            target: join_path(prefix, &segs),
            renamed: false,
            line,
        });
    }
}

fn join_path(prefix: &[String], segs: &[String]) -> String {
    let mut parts: Vec<&str> = prefix.iter().map(String::as_str).collect();
    parts.extend(segs.iter().map(String::as_str));
    parts.join("::")
}

/// Side scan over the whole token stream for `enum` definitions,
/// collecting variant names at brace depth 1 (attribute groups and
/// variant payloads are skipped by bracket counting). Test-masked
/// enums are ignored.
fn extract_enums(tokens: &[Token], lines: &[SplitLine], mask: &[bool]) -> Vec<EnumDef> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let t = &tokens[i];
        if !(t.kind == TokenKind::Ident && t.text == "enum") {
            i += 1;
            continue;
        }
        let masked = mask.get(t.line.saturating_sub(1)).copied().unwrap_or(false);
        let Some(name_tok) = tokens.get(i + 1).filter(|n| n.kind == TokenKind::Ident) else {
            i += 1;
            continue;
        };
        // Find the body's opening brace, skipping generics and bounds.
        let mut j = i + 2;
        while j < tokens.len() && !tokens[j].is_punct("{") && !tokens[j].is_punct(";") {
            j += 1;
        }
        if j >= tokens.len() || tokens[j].is_punct(";") {
            i = j;
            continue;
        }
        let mut variants = Vec::new();
        let mut k = j + 1;
        let mut depth = 1i64;
        let mut expect_name = true;
        while k < tokens.len() && depth > 0 {
            let tk = &tokens[k];
            if tk.kind == TokenKind::Punct {
                match tk.text.as_str() {
                    "{" | "(" | "[" => depth += 1,
                    "}" | ")" | "]" => depth -= 1,
                    "," if depth == 1 => expect_name = true,
                    _ => {}
                }
            } else if depth == 1 && expect_name && tk.kind == TokenKind::Ident {
                variants.push(tk.text.clone());
                expect_name = false;
            }
            k += 1;
        }
        if !masked {
            out.push(EnumDef {
                name: name_tok.text.clone(),
                line: t.line,
                variants,
                protocol: has_marker_above(lines, t.line, PROTOCOL_ENUM_MARKER),
            });
        }
        i = k;
    }
    out
}

/// Side scan over the whole token stream for `match` expressions. Every
/// `match` ident position is parsed independently (nested matches each
/// get their own fact); malformed or non-expression uses parse to
/// `None` and are skipped.
fn extract_matches(
    tokens: &[Token],
    mask: &[bool],
    allowed: &impl Fn(usize, Rule) -> bool,
) -> Vec<MatchFact> {
    let mut out = Vec::new();
    for i in 0..tokens.len() {
        let t = &tokens[i];
        if t.kind == TokenKind::Ident && t.text == "match" {
            if let Some(m) = parse_match(tokens, i, mask, allowed) {
                out.push(m);
            }
        }
    }
    out
}

/// Parses one `match` expression starting at the `match` ident at `at`:
/// scrutinee up to the first `{` at bracket depth 0, then arms as
/// `pattern => body` with bracket-counted bodies.
fn parse_match(
    tokens: &[Token],
    at: usize,
    mask: &[bool],
    allowed: &impl Fn(usize, Rule) -> bool,
) -> Option<MatchFact> {
    // Scrutinee: everything up to the body's opening brace.
    let mut j = at + 1;
    let mut depth = 0i64;
    loop {
        let t = tokens.get(j)?;
        if t.kind == TokenKind::Punct {
            match t.text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => {
                    depth -= 1;
                    if depth < 0 {
                        return None;
                    }
                }
                "{" if depth == 0 => break,
                ";" if depth == 0 => return None,
                _ => {}
            }
        }
        j += 1;
    }
    if j == at + 1 {
        return None; // no scrutinee: not a match expression
    }

    let mut arms = Vec::new();
    let mut k = j + 1;
    loop {
        let first = tokens.get(k)?; // unterminated body: bail
        if first.is_punct("}") {
            break;
        }
        // Pattern (guard included): tokens up to `=>` at sub-depth 0.
        let arm_line = first.line;
        let mut pat = Vec::new();
        let mut d = 0i64;
        loop {
            let p = tokens.get(k)?;
            if p.kind == TokenKind::Punct {
                match p.text.as_str() {
                    "(" | "[" | "{" => d += 1,
                    ")" | "]" | "}" => {
                        if d == 0 {
                            return None;
                        }
                        d -= 1;
                    }
                    "=>" if d == 0 => break,
                    _ => {}
                }
            }
            pat.push(p.text.clone());
            k += 1;
        }
        k += 1; // past `=>`
        arms.push(ArmFact {
            line: arm_line,
            pat,
            allowed: allowed(arm_line, Rule::StateTotal),
        });
        // Body: a balanced `{…}` block, or an expression up to the `,`
        // (or the match's own closing `}`) at relative depth 0.
        if tokens.get(k).is_some_and(|b| b.is_punct("{")) {
            let mut d = 1i64;
            k += 1;
            loop {
                let b = tokens.get(k)?;
                if b.kind == TokenKind::Punct {
                    match b.text.as_str() {
                        "{" | "(" | "[" => d += 1,
                        "}" | ")" | "]" => {
                            d -= 1;
                            if d == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                }
                k += 1;
            }
            k += 1; // past the block's closing `}`
            if tokens.get(k).is_some_and(|c| c.is_punct(",")) {
                k += 1;
            }
        } else {
            let mut d = 0i64;
            loop {
                let b = tokens.get(k)?;
                if b.kind == TokenKind::Punct {
                    match b.text.as_str() {
                        "(" | "[" | "{" => d += 1,
                        ")" | "]" if d == 0 => return None,
                        "}" if d == 0 => break,
                        "}" | ")" | "]" => d -= 1,
                        "," if d == 0 => {
                            k += 1;
                            break;
                        }
                        _ => {}
                    }
                }
                k += 1;
            }
        }
    }
    Some(MatchFact {
        line: tokens[at].line,
        arms,
        is_test: mask
            .get(tokens[at].line.saturating_sub(1))
            .copied()
            .unwrap_or(false),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex::{lex_tokens, split_source, test_mask};

    fn index(src: &str) -> FileIndex {
        let lines = split_source(src);
        let mask = test_mask(&lines);
        let tokens = lex_tokens(&lines);
        let allows = vec![BTreeSet::new(); lines.len()];
        index_file(
            "demo",
            std::path::Path::new("crates/demo/src/lib.rs"),
            &lines,
            &mask,
            &tokens,
            &allows,
        )
    }

    #[test]
    fn fns_and_impl_types_are_indexed() {
        let fi = index(
            "struct G;\nimpl G {\n    fn inner(&self) {}\n}\nfn free() {}\nimpl Display for G {\n    fn fmt(&self) {}\n}\n",
        );
        let names: Vec<(&str, Option<&str>)> = fi
            .fns
            .iter()
            .map(|f| (f.name.as_str(), f.impl_type.as_deref()))
            .collect();
        assert_eq!(
            names,
            vec![("inner", Some("G")), ("free", None), ("fmt", Some("G"))]
        );
    }

    #[test]
    fn hot_marker_attaches_through_attributes() {
        let fi = index("// bpush-lint: hot_path\n#[inline]\nfn fast() {}\nfn cold() {}\n");
        assert!(fi.fns[0].hot);
        assert!(!fi.fns[1].hot);
    }

    #[test]
    fn calls_record_qualifier_and_receiver() {
        let fi = index("fn f(g: &G) {\n    g.step();\n    G::probe(1);\n    free(2);\n}\n");
        let calls = &fi.fns[0].calls;
        assert_eq!(calls[0].name, "step");
        assert_eq!(calls[0].receiver.as_deref(), Some("g"));
        assert_eq!(calls[1].name, "probe");
        assert_eq!(calls[1].qualifier.as_deref(), Some("G"));
        assert_eq!(calls[2].name, "free");
        assert!(calls[2].qualifier.is_none() && calls[2].receiver.is_none());
    }

    #[test]
    fn alloc_needles_are_found() {
        let fi = index("fn f(v: &mut Vec<u32>) {\n    v.push(1);\n    let b = Box::new(2);\n    let s = format!(\"x\");\n}\n");
        let whats: Vec<&str> = fi.fns[0].allocs.iter().map(|n| n.what.as_str()).collect();
        assert!(whats.iter().any(|w| w.contains("push")));
        assert!(whats.contains(&"Box::new"));
        assert!(whats.contains(&"format!"));
    }

    #[test]
    fn io_needles_are_found() {
        let fi = index(
            "fn f() {\n    let t = std::time::Instant::now();\n    std::thread::sleep(d);\n}\n",
        );
        let whats: Vec<&str> = fi.fns[0].ios.iter().map(|n| n.what.as_str()).collect();
        assert!(whats.contains(&"Instant::now"));
        assert!(whats.contains(&"thread::"));
    }

    #[test]
    fn zero_arg_lock_calls_are_locks_not_calls() {
        let fi = index(
            "fn f(&self) {\n    let g = self.slots[idx].lock();\n    session.read(txn, item);\n}\n",
        );
        let f = &fi.fns[0];
        assert_eq!(f.locks.len(), 1);
        assert_eq!(f.locks[0].recv, "slots");
        // `session.read(txn, item)` takes arguments: a call, not a lock.
        assert!(f.calls.iter().any(|c| c.name == "read"));
    }

    #[test]
    fn use_aliases_track_renames_and_groups() {
        let fi = index(
            "use std::time::Instant as Stamp;\nuse std::collections::{BTreeMap, HashMap as Plain};\n",
        );
        let got: Vec<(&str, &str, bool)> = fi
            .aliases
            .iter()
            .map(|a| (a.binding.as_str(), a.target.as_str(), a.renamed))
            .collect();
        assert_eq!(
            got,
            vec![
                ("Stamp", "std::time::Instant", true),
                ("BTreeMap", "std::collections::BTreeMap", false),
                ("Plain", "std::collections::HashMap", true),
            ]
        );
    }

    #[test]
    fn test_mask_marks_fns_and_drops_aliases() {
        let fi = index(
            "fn live() {}\n#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n    fn t() {}\n}\n",
        );
        assert!(!fi.fns[0].is_test);
        assert!(fi.fns[1].is_test);
        assert!(fi.aliases.is_empty());
    }

    #[test]
    fn sans_io_marker_is_file_level() {
        let fi = index("//! Module docs.\n// bpush-lint: sans_io — protocol core\nfn f() {}\n");
        assert!(fi.sans_io);
    }

    #[test]
    fn trait_method_decls_have_no_body() {
        let fi = index(
            "trait T {\n    fn sig(&self) -> u32;\n    fn with_default(&self) { helper(); }\n}\n",
        );
        assert_eq!(fi.fns.len(), 2);
        assert!(fi.fns[0].calls.is_empty());
        assert_eq!(fi.fns[1].calls[0].name, "helper");
    }

    #[test]
    fn index_sites_are_found_and_non_index_brackets_are_not() {
        let fi = index(
            "fn f(b: &[u8], i: usize) -> u8 {\n    let v = [1, 2];\n    let s: [u8; 2] = v;\n    let _ = &b[..i];\n    b[i] + s[0]\n}\n",
        );
        let whats: Vec<&str> = fi.fns[0].indexes.iter().map(|s| s.what.as_str()).collect();
        // `&b[..i]` slicing and both `b[i]` / `s[0]` index expressions
        // are sites; the array literal, type, and borrow are not.
        assert_eq!(
            whats,
            vec!["`b[…]`", "`b[…]`", "`s[…]`"],
            "{:?}",
            fi.fns[0].indexes
        );
    }

    #[test]
    fn division_facts_skip_constant_and_float_divisors() {
        let fi = index(
            "fn f(a: u64, b: u64) -> u64 {\n    let x = a / 8;\n    let y = 1.5 / ratio;\n    let z = a / b as f64;\n    a % b\n}\n",
        );
        let whats: Vec<&str> = fi.fns[0].panics.iter().map(|n| n.what.as_str()).collect();
        assert_eq!(whats, vec!["`%` with non-constant divisor"]);
    }

    #[test]
    fn unreachable_macro_is_a_panic_fact() {
        let fi = index("fn f() {\n    unreachable!(\"dead\");\n}\n");
        assert_eq!(fi.fns[0].panics[0].what, "unreachable!");
        assert_eq!(fi.fns[0].panics[0].line, 2);
    }

    #[test]
    fn tick_arithmetic_is_found_on_both_sides() {
        let fi = index(
            "fn f(now: Cycle, t: Cycle, w: u64) -> u64 {\n    let lhs = now.number() - w;\n    let rhs = w + t.number();\n    let safe = now.number().saturating_sub(w);\n    let conv = w + u64::from(t.number());\n    lhs + rhs\n}\n",
        );
        let lines: Vec<usize> = fi.fns[0].ticks.iter().map(|n| n.line).collect();
        assert_eq!(lines, vec![2, 3], "{:?}", fi.fns[0].ticks);
    }

    #[test]
    fn self_zero_arithmetic_counts_only_in_tick_impls() {
        let tick = index(
            "impl Cycle {\n    fn next(self) -> Cycle {\n        Cycle(self.0 + 1)\n    }\n}\n",
        );
        assert_eq!(tick.fns[0].ticks.len(), 1);
        let plain =
            index("impl Reader {\n    fn next(self) -> u64 {\n        self.0 + 1\n    }\n}\n");
        assert!(plain.fns[0].ticks.is_empty());
    }

    #[test]
    fn enums_are_indexed_with_variants_and_marker() {
        let fi = index(
            "// bpush-lint: protocol_enum — wire vocabulary\n#[derive(Debug)]\npub enum Seg {\n    Header,\n    Body(u32),\n    Tail { n: u8 },\n}\nenum Plain { A, B = 3 }\n",
        );
        assert_eq!(fi.enums.len(), 2);
        assert_eq!(fi.enums[0].name, "Seg");
        assert_eq!(fi.enums[0].variants, vec!["Header", "Body", "Tail"]);
        assert!(fi.enums[0].protocol);
        assert_eq!(fi.enums[1].variants, vec!["A", "B"]);
        assert!(!fi.enums[1].protocol);
    }

    #[test]
    fn match_arms_record_patterns_and_wildcards() {
        let fi = index(
            "fn f(s: Seg) -> u32 {\n    match s {\n        Seg::Header => 0,\n        Seg::Body(n) => n,\n        _ => 2,\n    }\n}\n",
        );
        assert_eq!(fi.matches.len(), 1);
        let m = &fi.matches[0];
        assert_eq!(m.line, 2);
        assert_eq!(m.arms.len(), 3);
        assert_eq!(m.arms[0].pat, vec!["Seg", "::", "Header"]);
        assert_eq!(m.arms[2].pat, vec!["_"]);
        assert_eq!(m.arms[2].line, 5);
    }

    #[test]
    fn nested_matches_yield_independent_facts() {
        let fi = index(
            "fn f(a: A, b: B) -> u32 {\n    match a {\n        A::X => match b {\n            B::Y => 1,\n            other => 2,\n        },\n        A::Z => 3,\n    }\n}\n",
        );
        assert_eq!(fi.matches.len(), 2);
        assert_eq!(fi.matches[0].arms.len(), 2, "{:?}", fi.matches[0].arms);
        assert_eq!(fi.matches[1].arms.len(), 2);
        assert_eq!(fi.matches[1].arms[1].pat, vec!["other"]);
    }

    #[test]
    fn decode_path_marker_is_file_level() {
        let fi = index("// bpush-lint: decode_path — wire reader\nfn f() {}\n");
        assert!(fi.decode_path);
    }
}
