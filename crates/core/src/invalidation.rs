//! The invalidation-only method (§3.1) and its versioned-cache extension
//! (§4.1, Theorem 4).

use std::collections::BTreeMap;
use std::fmt;

use bpush_broadcast::ControlInfo;
use bpush_types::{Cycle, ItemId, QueryId};

use crate::batch::CohortScreen;
use crate::protocol::{
    AbortReason, CacheMode, ReadCandidate, ReadConstraint, ReadDirective, ReadOnlyProtocol,
    ReadOutcome,
};
use crate::readset::ReadSet;

#[derive(Debug)]
struct QState {
    readset: ReadSet,
    /// Latest database state at which the whole readset is known current.
    verified_state: Cycle,
    /// Versioned-cache mode: the pinned snapshot once an item was
    /// invalidated (`u − 1` in the paper's terms).
    pinned: Option<Cycle>,
    doomed: Option<AbortReason>,
}

/// The invalidation-only method (§3.1).
///
/// Each bcast is preceded by an invalidation report listing the items
/// updated during the previous cycle(s); a query aborts as soon as an item
/// it has read appears in a report. Committed queries therefore read the
/// database state of their *last* read's cycle — the most current view of
/// all the methods (Table 1).
///
/// With [`InvalidationOnly::with_versioned_cache`], the §4.1 extension is
/// active: instead of aborting, the query is *marked* at the first
/// invalidation and may continue as long as every further read can be
/// served from cache entries old enough to belong to the pinned snapshot
/// (Theorem 4).
///
/// Disconnections: a missed cycle dooms active queries unless the report
/// window (§5.2.2) covers the gap; in versioned-cache mode a gap instead
/// pins the query, which then proceeds from cache (the cache-based
/// tolerance the paper describes).
pub struct InvalidationOnly {
    versioned_cache: bool,
    /// Versioned mode only: permit pinned reads from the broadcast when
    /// the value is provably part of the pinned snapshot (the executor
    /// clamps validity to what heard reports prove). `false` gives the
    /// letter-of-the-paper, cache-only rule.
    broadcast_fallback: bool,
    queries: BTreeMap<QueryId, QState>,
    last_heard: Option<Cycle>,
    /// Union bitmap over everything any active query has read: one
    /// word-AND pass clears the whole cohort on report-disjoint cycles.
    screen: CohortScreen,
}

/// Renders exactly like the pre-screen derived form: the screen is
/// derived validation state, and protocol renderings feed mc state
/// hashes, which must not change with the representation.
impl fmt::Debug for InvalidationOnly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("InvalidationOnly")
            .field("versioned_cache", &self.versioned_cache)
            .field("broadcast_fallback", &self.broadcast_fallback)
            .field("queries", &self.queries)
            .field("last_heard", &self.last_heard)
            .finish()
    }
}

impl InvalidationOnly {
    /// The plain §3.1 method.
    pub fn new() -> Self {
        InvalidationOnly {
            versioned_cache: false,
            broadcast_fallback: true,
            queries: BTreeMap::new(),
            last_heard: None,
            screen: CohortScreen::new(),
        }
    }

    /// The §4.1 versioned-cache extension: pinned reads come from the
    /// cache, or from the broadcast when the report stream proves the
    /// value old enough.
    pub fn with_versioned_cache() -> Self {
        InvalidationOnly {
            versioned_cache: true,
            ..InvalidationOnly::new()
        }
    }

    /// The strict §4.1 variant: after the pin, reads are served from the
    /// cache only, exactly as Theorem 4 words it.
    pub fn with_strict_versioned_cache() -> Self {
        InvalidationOnly {
            versioned_cache: true,
            broadcast_fallback: false,
            ..InvalidationOnly::new()
        }
    }

    /// Whether the versioned-cache extension is active.
    pub fn is_versioned(&self) -> bool {
        self.versioned_cache
    }

    fn mark_or_doom(q: &mut QState, versioned: bool) {
        if versioned {
            if q.pinned.is_none() {
                q.pinned = Some(q.verified_state);
            }
        } else {
            q.doomed = Some(AbortReason::Invalidated);
        }
    }
}

impl Default for InvalidationOnly {
    fn default() -> Self {
        InvalidationOnly::new()
    }
}

impl ReadOnlyProtocol for InvalidationOnly {
    fn name(&self) -> &'static str {
        if self.versioned_cache {
            "inv-versioned-cache"
        } else {
            "inv-only"
        }
    }

    fn cache_mode(&self) -> CacheMode {
        if self.versioned_cache {
            CacheMode::Versioned
        } else {
            CacheMode::Plain
        }
    }

    fn on_control(&mut self, ctrl: &ControlInfo) {
        let n = ctrl.cycle();
        let report = ctrl.invalidation();
        // Does the report's window cover everything since we last heard?
        let covered = match self.last_heard {
            None => true, // nothing read before we first tune in
            Some(h) => n.number() <= h.number().saturating_add(u64::from(report.window())),
        };
        // Batch fast path: one word-AND pass of the cohort's union
        // bitmap against the report settles every query at once on
        // report-disjoint cycles — the overwhelmingly common outcome.
        let cohort_clear = covered && self.screen.is_disjoint_from(report);
        for q in self.queries.values_mut() {
            if q.doomed.is_some() {
                continue;
            }
            if q.pinned.is_some() {
                // Already pinned: the snapshot is fixed; reports (and
                // gaps) no longer matter.
                continue;
            }
            if cohort_clear {
                q.verified_state = n;
                continue;
            }
            if !covered {
                // A gap we cannot reconstruct: abort, or pin at the last
                // verified state in versioned-cache mode.
                if self.versioned_cache {
                    q.pinned = Some(q.verified_state);
                } else {
                    q.doomed = Some(AbortReason::Disconnected);
                }
                continue;
            }
            if report.any_stale_set(
                q.readset.as_slice(),
                q.readset.word_blocks(),
                q.verified_state,
            ) {
                Self::mark_or_doom(q, self.versioned_cache);
            } else {
                // Whole readset unchanged through the cycles this report
                // covers: current at the state this bcast carries.
                q.verified_state = n;
            }
        }
        self.last_heard = Some(n);
    }

    fn on_missed_cycle(&mut self, _cycle: Cycle) {
        // Handled lazily at the next heard report via the window check;
        // nothing to do here (`last_heard` stays put).
    }

    fn begin_query(&mut self, q: QueryId, now: Cycle) {
        let prev = self.queries.insert(
            q,
            QState {
                readset: ReadSet::new(),
                verified_state: now,
                pinned: None,
                doomed: None,
            },
        );
        assert!(prev.is_none(), "query ids must not be reused");
    }

    fn read_directive(&self, q: QueryId, _item: ItemId, now: Cycle) -> ReadDirective {
        let q = &self.queries[&q];
        if let Some(reason) = q.doomed {
            return ReadDirective::Doom(reason);
        }
        match q.pinned {
            Some(state) => ReadDirective::Read(ReadConstraint {
                state,
                cache_only: !self.broadcast_fallback,
            }),
            None => ReadDirective::Read(ReadConstraint {
                state: now,
                cache_only: false,
            }),
        }
    }

    fn apply_read(
        &mut self,
        q: QueryId,
        item: ItemId,
        candidate: &ReadCandidate,
        now: Cycle,
    ) -> ReadOutcome {
        // lint: allow(panic) — protocol contract: reads only arrive for begun queries
        let qs = self.queries.get_mut(&q).expect("unknown query");
        if let Some(reason) = qs.doomed {
            return ReadOutcome::Rejected(reason);
        }
        let state = qs.pinned.unwrap_or(now);
        if !candidate.current_at(state) {
            let reason = AbortReason::VersionUnavailable;
            qs.doomed = Some(reason);
            return ReadOutcome::Rejected(reason);
        }
        if qs.pinned.is_some() && !self.broadcast_fallback && !candidate.source.is_cache() {
            // the strict Theorem-4 rule is cache-only after marking; a
            // broadcast candidate here is an executor bug
            let reason = AbortReason::VersionUnavailable;
            qs.doomed = Some(reason);
            return ReadOutcome::Rejected(reason);
        }
        qs.readset.insert(item);
        self.screen.note_read(item);
        ReadOutcome::Accepted
    }

    fn finish_query(&mut self, q: QueryId) {
        self.queries.remove(&q);
        if self.queries.is_empty() {
            // Lingering bits of finished queries only cost fallbacks to
            // the per-query probes; a drained cohort resets them.
            self.screen.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::Source;
    use bpush_broadcast::InvalidationReport;
    use bpush_types::{Granularity, ItemValue};

    fn ctrl(cycle: u64, window: u32, items: &[u32]) -> ControlInfo {
        let c = Cycle::new(cycle);
        ControlInfo::new(
            c,
            InvalidationReport::new(
                c,
                window,
                items.iter().map(|&i| ItemId::new(i)),
                Granularity::Item,
                1,
            ),
            None,
            None,
        )
    }

    fn current_candidate(_now: u64) -> ReadCandidate {
        ReadCandidate {
            value: ItemValue::initial(),
            last_writer_tag: None,
            valid_from: Cycle::ZERO,
            valid_until: None,
            source: Source::BroadcastCurrent,
        }
    }

    fn cache_candidate(valid_from: u64, valid_until: Option<u64>) -> ReadCandidate {
        ReadCandidate {
            value: ItemValue::initial(),
            last_writer_tag: None,
            valid_from: Cycle::new(valid_from),
            valid_until: valid_until.map(Cycle::new),
            source: Source::CacheOld,
        }
    }

    #[test]
    fn unrelated_invalidations_do_not_abort() {
        let mut p = InvalidationOnly::new();
        let q = QueryId::new(0);
        p.begin_query(q, Cycle::new(0));
        assert_eq!(
            p.apply_read(q, ItemId::new(1), &current_candidate(0), Cycle::new(0)),
            ReadOutcome::Accepted
        );
        p.on_control(&ctrl(1, 1, &[5, 9]));
        assert!(matches!(
            p.read_directive(q, ItemId::new(2), Cycle::new(1)),
            ReadDirective::Read(ReadConstraint {
                cache_only: false,
                ..
            })
        ));
    }

    #[test]
    fn invalidated_read_dooms_plain_query() {
        let mut p = InvalidationOnly::new();
        let q = QueryId::new(0);
        p.begin_query(q, Cycle::new(0));
        p.apply_read(q, ItemId::new(1), &current_candidate(0), Cycle::new(0));
        p.on_control(&ctrl(1, 1, &[1]));
        assert_eq!(
            p.read_directive(q, ItemId::new(2), Cycle::new(1)),
            ReadDirective::Doom(AbortReason::Invalidated)
        );
        assert_eq!(
            p.apply_read(q, ItemId::new(2), &current_candidate(1), Cycle::new(1)),
            ReadOutcome::Rejected(AbortReason::Invalidated)
        );
        assert_eq!(p.name(), "inv-only");
        assert_eq!(p.cache_mode(), CacheMode::Plain);
    }

    #[test]
    fn versioned_cache_pins_snapshot_instead_of_aborting() {
        let mut p = InvalidationOnly::with_versioned_cache();
        assert!(p.is_versioned());
        assert_eq!(p.cache_mode(), CacheMode::Versioned);
        let q = QueryId::new(0);
        p.begin_query(q, Cycle::new(3));
        p.on_control(&ctrl(3, 1, &[])); // heard cycle 3's (empty) report
        p.apply_read(q, ItemId::new(1), &current_candidate(3), Cycle::new(3));
        p.on_control(&ctrl(4, 1, &[1])); // item 1 invalidated -> pin at state 3
        match p.read_directive(q, ItemId::new(2), Cycle::new(4)) {
            ReadDirective::Read(c) => {
                assert_eq!(c.state, Cycle::new(3));
                assert!(
                    !c.cache_only,
                    "default variant allows proven broadcast reads"
                );
            }
            other => panic!("expected pinned read, got {other:?}"),
        }
        // the strict variant is cache-only after the pin
        let mut s = InvalidationOnly::with_strict_versioned_cache();
        s.begin_query(q, Cycle::new(3));
        s.on_control(&ctrl(3, 1, &[]));
        s.apply_read(q, ItemId::new(1), &current_candidate(3), Cycle::new(3));
        s.on_control(&ctrl(4, 1, &[1]));
        match s.read_directive(q, ItemId::new(2), Cycle::new(4)) {
            ReadDirective::Read(c) => assert!(c.cache_only),
            other => panic!("expected pinned read, got {other:?}"),
        }
        // a cache entry valid at state 3 is accepted...
        assert_eq!(
            p.apply_read(
                q,
                ItemId::new(2),
                &cache_candidate(2, Some(4)),
                Cycle::new(4)
            ),
            ReadOutcome::Accepted
        );
        // ...but one fetched after the pin is not
        assert_eq!(
            p.apply_read(q, ItemId::new(3), &cache_candidate(4, None), Cycle::new(4)),
            ReadOutcome::Rejected(AbortReason::VersionUnavailable)
        );
    }

    #[test]
    fn strict_versioned_cache_rejects_broadcast_after_pin() {
        let mut p = InvalidationOnly::with_strict_versioned_cache();
        let q = QueryId::new(0);
        p.begin_query(q, Cycle::new(0));
        p.apply_read(q, ItemId::new(1), &current_candidate(0), Cycle::new(0));
        p.on_control(&ctrl(1, 1, &[1]));
        // broadcast candidate, even if it claims validity, is rejected
        let bcast = ReadCandidate {
            source: Source::BroadcastCurrent,
            ..cache_candidate(0, None)
        };
        assert_eq!(
            p.apply_read(q, ItemId::new(2), &bcast, Cycle::new(1)),
            ReadOutcome::Rejected(AbortReason::VersionUnavailable)
        );
    }

    #[test]
    fn gap_dooms_plain_but_pins_versioned() {
        // plain: miss cycle 2 entirely (window 1 cannot cover it)
        let mut p = InvalidationOnly::new();
        let q = QueryId::new(0);
        p.begin_query(q, Cycle::new(0));
        p.on_control(&ctrl(0, 1, &[]));
        p.apply_read(q, ItemId::new(1), &current_candidate(0), Cycle::new(0));
        p.on_control(&ctrl(1, 1, &[]));
        p.on_missed_cycle(Cycle::new(2));
        p.on_control(&ctrl(3, 1, &[]));
        assert_eq!(
            p.read_directive(q, ItemId::new(2), Cycle::new(3)),
            ReadDirective::Doom(AbortReason::Disconnected)
        );

        // versioned: the same gap pins at the last verified state
        let mut v = InvalidationOnly::with_versioned_cache();
        v.begin_query(q, Cycle::new(0));
        v.on_control(&ctrl(0, 1, &[]));
        v.apply_read(q, ItemId::new(1), &current_candidate(0), Cycle::new(0));
        v.on_control(&ctrl(1, 1, &[]));
        v.on_missed_cycle(Cycle::new(2));
        v.on_control(&ctrl(3, 1, &[]));
        match v.read_directive(q, ItemId::new(2), Cycle::new(3)) {
            ReadDirective::Read(c) => {
                assert_eq!(c.state, Cycle::new(1), "pinned at last verified state");
            }
            other => panic!("expected pinned read, got {other:?}"),
        }
    }

    #[test]
    fn windowed_report_covers_gap_for_plain_method() {
        let mut p = InvalidationOnly::new();
        let q = QueryId::new(0);
        p.begin_query(q, Cycle::new(0));
        p.on_control(&ctrl(0, 3, &[]));
        p.apply_read(q, ItemId::new(1), &current_candidate(0), Cycle::new(0));
        p.on_missed_cycle(Cycle::new(1));
        p.on_missed_cycle(Cycle::new(2));
        // window-3 report at cycle 3 covers cycles 0..=2: still active
        p.on_control(&ctrl(3, 3, &[7]));
        assert!(matches!(
            p.read_directive(q, ItemId::new(2), Cycle::new(3)),
            ReadDirective::Read(_)
        ));
        // but a windowed report naming a read item still dooms it
        p.on_control(&ctrl(4, 3, &[1]));
        assert_eq!(
            p.read_directive(q, ItemId::new(2), Cycle::new(4)),
            ReadDirective::Doom(AbortReason::Invalidated)
        );
    }

    #[test]
    fn pinned_query_survives_later_gaps() {
        let mut p = InvalidationOnly::with_versioned_cache();
        let q = QueryId::new(0);
        p.begin_query(q, Cycle::new(0));
        p.on_control(&ctrl(0, 1, &[]));
        p.apply_read(q, ItemId::new(1), &current_candidate(0), Cycle::new(0));
        p.on_control(&ctrl(1, 1, &[1])); // pin at state 0
        p.on_missed_cycle(Cycle::new(2));
        p.on_control(&ctrl(5, 1, &[])); // huge uncovered gap
        match p.read_directive(q, ItemId::new(2), Cycle::new(5)) {
            ReadDirective::Read(c) => assert_eq!(c.state, Cycle::new(0)),
            other => panic!("pinned query must survive gaps, got {other:?}"),
        }
    }

    #[test]
    fn finish_query_releases_state() {
        let mut p = InvalidationOnly::new();
        let q = QueryId::new(0);
        p.begin_query(q, Cycle::ZERO);
        p.finish_query(q);
        p.begin_query(QueryId::new(1), Cycle::ZERO);
        assert_eq!(p.queries.len(), 1);
    }

    #[test]
    #[should_panic(expected = "must not be reused")]
    fn duplicate_query_id_rejected() {
        let mut p = InvalidationOnly::new();
        p.begin_query(QueryId::new(0), Cycle::ZERO);
        p.begin_query(QueryId::new(0), Cycle::ZERO);
    }
}
