//! Batched, word-parallel validation of query cohorts.
//!
//! Each protocol validates every co-resident query against every cycle's
//! invalidation (and, for SGT, augmented) report. Per query that probe is
//! already a handful of word ANDs (`InvalidationReport::any_stale_set`),
//! but the far more common outcome is that the *whole cohort* is
//! untouched by the report. [`CohortScreen`] maintains one union bitmap
//! over everything any active query has read; one word-AND pass against
//! the report's bitmap then clears the entire cohort at once, and the
//! per-query probes run only on the rare cycles where the union actually
//! intersects the report.
//!
//! The screen is conservative by construction: bits are only ever added
//! while any query is active (a finished query's bits linger until the
//! cohort drains), so a "disjoint" verdict is always exact, while a
//! non-disjoint verdict merely falls back to the per-query probes —
//! verdicts are identical to per-query validation in every case, which
//! the differential proptests in `tests/` pin down.

// bpush-lint: sans_io — protocol core: pure bitmap arithmetic over report/readset ids

use bpush_broadcast::{AugmentedReport, InvalidationReport};
use bpush_types::{Cycle, ItemId};

use crate::readset::ReadSet;

/// Union bitmap over the items read by a cohort of co-resident queries,
/// mirroring the dense word-block form of [`ReadSet`] (same base-word /
/// span-cap rules). Maintained incrementally on every accepted read and
/// cleared when the cohort drains.
#[derive(Debug, Clone)]
pub struct CohortScreen {
    /// First 64-bit word of the block: bit `b` of `words[w]` is item
    /// `(base_word + w) * 64 + b`.
    base_word: u32,
    words: Vec<u64>,
    /// Cleared once the union's span exceeds [`ReadSet::MAX_SPAN_WORDS`];
    /// a degraded screen answers "maybe" forever (until [`CohortScreen::clear`]).
    dense: bool,
    /// Whether any read was noted since the last clear.
    any: bool,
}

impl CohortScreen {
    /// An empty screen.
    pub fn new() -> Self {
        CohortScreen {
            base_word: 0,
            words: Vec::new(),
            dense: true,
            any: false,
        }
    }

    /// Notes that some active query read `item`. Mirrors
    /// `ReadSet::note_word`, degrading permanently past the span cap.
    pub fn note_read(&mut self, item: ItemId) {
        self.any = true;
        if !self.dense {
            return;
        }
        let w = item.index() >> 6;
        let bit = 1u64 << (item.index() & 63);
        if self.words.is_empty() {
            self.base_word = w;
            self.words.push(bit);
            return;
        }
        if w < self.base_word {
            let grow = (self.base_word - w) as usize;
            if grow + self.words.len() > ReadSet::MAX_SPAN_WORDS {
                self.degrade();
                return;
            }
            let old_len = self.words.len();
            self.words.resize(old_len + grow, 0);
            self.words.rotate_right(grow);
            self.base_word = w;
        } else {
            let off = (w - self.base_word) as usize;
            if off >= ReadSet::MAX_SPAN_WORDS {
                self.degrade();
                return;
            }
            if off >= self.words.len() {
                self.words.resize(off + 1, 0);
            }
        }
        let off = (w - self.base_word) as usize;
        if let Some(slot) = self.words.get_mut(off) {
            *slot |= bit;
        }
    }

    fn degrade(&mut self) {
        self.dense = false;
        self.base_word = 0;
        self.words = Vec::new();
    }

    /// Resets the screen to empty (the cohort drained). This is the only
    /// point at which a degraded screen recovers its dense form.
    pub fn clear(&mut self) {
        self.base_word = 0;
        self.words.clear();
        self.dense = true;
        self.any = false;
    }

    /// Whether any read has been noted since the last clear.
    pub fn is_empty(&self) -> bool {
        !self.any
    }

    /// The screen's word block, when dense and nonempty.
    fn word_blocks(&self) -> Option<(u32, &[u64])> {
        if self.dense && !self.words.is_empty() {
            Some((self.base_word, self.words.as_slice()))
        } else {
            None
        }
    }

    /// Whether the whole cohort is provably untouched by `report`: no
    /// noted read, an empty report, or a word-AND miss between the union
    /// bitmap and the report bitmap. `false` means "maybe" — callers
    /// fall back to the per-query probes, so a stale (lingering) bit
    /// never changes a verdict.
    // bpush-lint: hot_path — per-cycle whole-cohort screen (PR-8 allocation-freedom contract)
    pub fn is_disjoint_from(&self, report: &InvalidationReport) -> bool {
        if !self.any || report.is_empty() {
            return true;
        }
        report.intersects_words(self.word_blocks()) == Some(false)
    }

    /// [`CohortScreen::is_disjoint_from`] against an augmented report.
    // bpush-lint: hot_path — per-cycle whole-cohort SGT screen (PR-8 allocation-freedom contract)
    pub fn is_disjoint_from_augmented(&self, report: &AugmentedReport) -> bool {
        if !self.any || report.is_empty() {
            return true;
        }
        report.intersects_words(self.word_blocks()) == Some(false)
    }

    /// Builds the union screen over a set of readsets (cold path; the
    /// protocols maintain their screens incrementally instead).
    pub fn for_readsets<'a>(readsets: impl IntoIterator<Item = &'a ReadSet>) -> Self {
        let mut screen = CohortScreen::new();
        for rs in readsets {
            for item in rs.iter() {
                screen.note_read(item);
            }
        }
        screen
    }
}

impl Default for CohortScreen {
    fn default() -> Self {
        CohortScreen::new()
    }
}

/// Batch staleness validation: the verdict of
/// [`InvalidationReport::any_stale`] for every `(readset, verified
/// state)` in `cohort`, written into `out` (cleared first, one `bool`
/// per cohort entry, in order). One word-AND pass of `screen` against
/// the report settles the whole cohort in the common disjoint case; the
/// per-query word probes run otherwise. Verdicts are identical to
/// calling `any_stale` per query — the differential proptests pin this.
pub fn stale_verdicts(
    report: &InvalidationReport,
    screen: &CohortScreen,
    cohort: &[(&ReadSet, Cycle)],
    out: &mut Vec<bool>,
) {
    out.clear();
    if screen.is_disjoint_from(report) {
        out.resize(cohort.len(), false);
        return;
    }
    for (rs, state) in cohort {
        out.push(report.any_stale_set(rs.as_slice(), rs.word_blocks(), *state));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpush_types::{Granularity, TxnId};

    fn report(cycle: u64, items: &[u32]) -> InvalidationReport {
        InvalidationReport::new(
            Cycle::new(cycle),
            1,
            items.iter().map(|&i| ItemId::new(i)),
            Granularity::Item,
            1,
        )
    }

    #[test]
    fn empty_screen_is_disjoint_from_everything() {
        let s = CohortScreen::new();
        assert!(s.is_empty());
        assert!(s.is_disjoint_from(&report(1, &[1, 2, 3])));
        let aug = AugmentedReport::new(
            Cycle::new(1),
            [(ItemId::new(1), TxnId::new(Cycle::new(1), 0))],
        );
        assert!(s.is_disjoint_from_augmented(&aug));
    }

    #[test]
    fn screen_catches_overlap_and_misses_disjoint() {
        let mut s = CohortScreen::new();
        s.note_read(ItemId::new(5));
        s.note_read(ItemId::new(900));
        assert!(!s.is_empty());
        assert!(!s.is_disjoint_from(&report(1, &[900, 1000])));
        assert!(s.is_disjoint_from(&report(1, &[4, 6, 899, 901])));
        assert!(s.is_disjoint_from(&report(1, &[])), "empty report");
        s.clear();
        assert!(s.is_empty());
        assert!(s.is_disjoint_from(&report(1, &[5])));
    }

    #[test]
    fn degraded_screen_answers_maybe() {
        let mut s = CohortScreen::new();
        s.note_read(ItemId::new(0));
        s.note_read(ItemId::new(u32::MAX));
        // disjoint in truth, but the degraded screen cannot prove it
        assert!(!s.is_disjoint_from(&report(1, &[7])));
        s.clear();
        s.note_read(ItemId::new(1));
        assert!(s.is_disjoint_from(&report(1, &[7])), "clear restores dense");
    }

    #[test]
    fn bucket_reports_are_never_screened_out() {
        let mut s = CohortScreen::new();
        s.note_read(ItemId::new(6));
        let r = report(1, &[5]).at_granularity(Granularity::Bucket);
        // item granularity bits cannot speak for bucket membership
        assert!(!s.is_disjoint_from(&r));
    }

    #[test]
    fn batch_verdicts_match_per_query() {
        let r = report(4, &[3, 64, 129]);
        let a: ReadSet = [ItemId::new(1), ItemId::new(64)].into_iter().collect();
        let b: ReadSet = [ItemId::new(2)].into_iter().collect();
        let c = ReadSet::new();
        let cohort: Vec<(&ReadSet, Cycle)> = vec![
            (&a, Cycle::new(0)),
            (&b, Cycle::new(3)),
            (&c, Cycle::new(4)),
        ];
        let screen = CohortScreen::for_readsets([&a, &b, &c]);
        let mut out = Vec::new();
        stale_verdicts(&r, &screen, &cohort, &mut out);
        let oracle: Vec<bool> = cohort
            .iter()
            .map(|(rs, state)| r.any_stale(rs.as_slice(), *state))
            .collect();
        assert_eq!(out, oracle);

        // fully disjoint cohort -> the screen settles it in one pass
        let d: ReadSet = [ItemId::new(500)].into_iter().collect();
        let cohort: Vec<(&ReadSet, Cycle)> = vec![(&d, Cycle::new(0)), (&d, Cycle::new(9))];
        let screen = CohortScreen::for_readsets([&d]);
        stale_verdicts(&r, &screen, &cohort, &mut out);
        assert_eq!(out, vec![false, false]);
    }
}
