//! The multiversion broadcast method (§3.2).

use std::collections::BTreeMap;

use bpush_broadcast::ControlInfo;
use bpush_types::{Cycle, ItemId, QueryId};

use crate::protocol::{
    AbortReason, CacheMode, ReadCandidate, ReadConstraint, ReadDirective, ReadOnlyProtocol,
    ReadOutcome,
};
use crate::readset::ReadSet;

#[derive(Debug)]
struct MvState {
    /// `c_0`: the cycle of the query's first read; all reads target the
    /// database state broadcast at `c_0` (Theorem 2).
    c0: Option<Cycle>,
    readset: ReadSet,
}

/// The multiversion broadcast method (§3.2).
///
/// The server broadcasts, besides each item's current value, its previous
/// values from the last `V` cycles. A query performing its first read at
/// cycle `c_0` subsequently reads, for every item, the version with the
/// largest cycle `≤ c_0` — i.e. it observes exactly the snapshot
/// broadcast at `c_0` and is serialized at the beginning of `c_0`
/// (Theorem 2). Queries with span `≤ V` always commit; a query whose span
/// exceeds the retention aborts only when a version it needs has fallen
/// off air ([`AbortReason::VersionUnavailable`]).
///
/// The method needs no invalidation processing at all and tolerates
/// missed cycles as long as the needed versions are still on air —
/// a transaction of span `s` can miss up to `V − s` cycles (§5.2.2).
///
/// Because `on_control` is a no-op by design, this is the one method the
/// batched word-AND validation engine ([`crate::batch::CohortScreen`])
/// does not apply to: there is no per-cycle report probe to screen.
#[derive(Debug, Default)]
pub struct MultiversionBroadcast {
    queries: BTreeMap<QueryId, MvState>,
    cached: bool,
}

impl MultiversionBroadcast {
    /// Creates the method. The span the server supports is a server-side
    /// property (`V`); the client needs no copy of it.
    pub fn new() -> Self {
        MultiversionBroadcast::default()
    }

    /// Variant that additionally reads from a version-aware client cache
    /// (the "combined with caching" configuration of §4.1).
    pub fn with_cache() -> Self {
        MultiversionBroadcast {
            queries: BTreeMap::new(),
            cached: true,
        }
    }

    /// The snapshot cycle of an active query, once its first read
    /// happened.
    pub fn snapshot_of(&self, q: QueryId) -> Option<Cycle> {
        self.queries.get(&q).and_then(|s| s.c0)
    }
}

impl ReadOnlyProtocol for MultiversionBroadcast {
    fn name(&self) -> &'static str {
        if self.cached {
            "multiversion+cache"
        } else {
            "multiversion"
        }
    }

    fn cache_mode(&self) -> CacheMode {
        if self.cached {
            CacheMode::Multiversion
        } else {
            CacheMode::None
        }
    }

    fn on_control(&mut self, _ctrl: &ControlInfo) {
        // Multiversion queries are pinned by their first read; reports
        // carry no information they need.
    }

    fn on_missed_cycle(&mut self, _cycle: Cycle) {
        // Tolerated: if a needed version falls off air meanwhile, the
        // read itself will fail with VersionUnavailable.
    }

    fn begin_query(&mut self, q: QueryId, _now: Cycle) {
        let prev = self.queries.insert(
            q,
            MvState {
                c0: None,
                readset: ReadSet::new(),
            },
        );
        assert!(prev.is_none(), "query ids must not be reused");
    }

    fn read_directive(&self, q: QueryId, _item: ItemId, now: Cycle) -> ReadDirective {
        let qs = &self.queries[&q];
        ReadDirective::Read(ReadConstraint {
            state: qs.c0.unwrap_or(now),
            cache_only: false,
        })
    }

    fn apply_read(
        &mut self,
        q: QueryId,
        item: ItemId,
        candidate: &ReadCandidate,
        now: Cycle,
    ) -> ReadOutcome {
        // lint: allow(panic) — protocol contract: reads only arrive for begun queries
        let qs = self.queries.get_mut(&q).expect("unknown query");
        let c0 = *qs.c0.get_or_insert(now);
        if !candidate.current_at(c0) {
            return ReadOutcome::Rejected(AbortReason::VersionUnavailable);
        }
        qs.readset.insert(item);
        ReadOutcome::Accepted
    }

    fn finish_query(&mut self, q: QueryId) {
        self.queries.remove(&q);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::Source;
    use bpush_types::{ItemValue, TxnId};

    fn candidate(from: u64, until: Option<u64>) -> ReadCandidate {
        ReadCandidate {
            value: if from == 0 {
                ItemValue::initial()
            } else {
                ItemValue::written_by(TxnId::new(Cycle::new(from - 1), 0))
            },
            last_writer_tag: None,
            valid_from: Cycle::new(from),
            valid_until: until.map(Cycle::new),
            source: Source::BroadcastOld,
        }
    }

    #[test]
    fn first_read_sets_snapshot() {
        let mut p = MultiversionBroadcast::new();
        let q = QueryId::new(0);
        p.begin_query(q, Cycle::new(5));
        assert_eq!(p.snapshot_of(q), None);
        // before the first read, the directive targets "now"
        match p.read_directive(q, ItemId::new(0), Cycle::new(5)) {
            ReadDirective::Read(c) => assert_eq!(c.state, Cycle::new(5)),
            other => panic!("{other:?}"),
        }
        assert_eq!(
            p.apply_read(q, ItemId::new(0), &candidate(5, None), Cycle::new(5)),
            ReadOutcome::Accepted
        );
        assert_eq!(p.snapshot_of(q), Some(Cycle::new(5)));
        // later directives stay pinned at c0 even as `now` advances
        match p.read_directive(q, ItemId::new(1), Cycle::new(9)) {
            ReadDirective::Read(c) => {
                assert_eq!(c.state, Cycle::new(5));
                assert!(!c.cache_only);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn old_version_satisfying_snapshot_is_accepted() {
        let mut p = MultiversionBroadcast::new();
        let q = QueryId::new(0);
        p.begin_query(q, Cycle::new(5));
        p.apply_read(q, ItemId::new(0), &candidate(5, None), Cycle::new(5));
        // value current for states [4, 7): current at snapshot 5
        assert_eq!(
            p.apply_read(q, ItemId::new(1), &candidate(4, Some(7)), Cycle::new(6)),
            ReadOutcome::Accepted
        );
        // value only current from state 6 on: not part of snapshot 5
        assert_eq!(
            p.apply_read(q, ItemId::new(2), &candidate(6, None), Cycle::new(6)),
            ReadOutcome::Rejected(AbortReason::VersionUnavailable)
        );
        // value superseded before the snapshot: also wrong
        assert_eq!(
            p.apply_read(q, ItemId::new(3), &candidate(2, Some(4)), Cycle::new(6)),
            ReadOutcome::Rejected(AbortReason::VersionUnavailable)
        );
    }

    #[test]
    fn reports_and_gaps_are_ignored() {
        let mut p = MultiversionBroadcast::new();
        let q = QueryId::new(0);
        p.begin_query(q, Cycle::new(0));
        p.apply_read(q, ItemId::new(0), &candidate(0, None), Cycle::new(0));
        p.on_missed_cycle(Cycle::new(1));
        p.on_missed_cycle(Cycle::new(2));
        // still pinned, still active
        match p.read_directive(q, ItemId::new(1), Cycle::new(3)) {
            ReadDirective::Read(c) => assert_eq!(c.state, Cycle::new(0)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn cache_variant_reports_cache_mode() {
        let p = MultiversionBroadcast::with_cache();
        assert_eq!(p.cache_mode(), CacheMode::Multiversion);
        assert_eq!(p.name(), "multiversion+cache");
        let plain = MultiversionBroadcast::new();
        assert_eq!(plain.cache_mode(), CacheMode::None);
        assert_eq!(plain.name(), "multiversion");
    }

    #[test]
    fn finish_releases_state() {
        let mut p = MultiversionBroadcast::new();
        p.begin_query(QueryId::new(0), Cycle::ZERO);
        p.finish_query(QueryId::new(0));
        assert!(p.queries.is_empty());
    }
}
