//! The multiversion caching method (§4.2, Theorem 5).

use std::collections::BTreeMap;
use std::fmt;

use bpush_broadcast::ControlInfo;
use bpush_types::{Cycle, ItemId, QueryId};

use crate::batch::CohortScreen;
use crate::protocol::{
    AbortReason, CacheMode, ReadCandidate, ReadConstraint, ReadDirective, ReadOnlyProtocol,
    ReadOutcome,
};
use crate::readset::ReadSet;

#[derive(Debug)]
struct McState {
    readset: ReadSet,
    verified_state: Cycle,
    /// The pinned snapshot `c_u − 1` once an item the query read was
    /// updated for the first time.
    pinned: Option<Cycle>,
    doomed: Option<AbortReason>,
}

/// The multiversion caching method (§4.2).
///
/// The broadcast is invalidation-only plus per-item version numbers; the
/// *client cache* serves as the storage medium for old versions: when a
/// cached page is updated, the stale entry is moved to an old-version
/// partition instead of being discarded. Let `c_u` be the first cycle at
/// which an item read by the query was updated; from then on the query
/// reads the largest version `< c_u` of every item — i.e. it observes the
/// snapshot `c_u − 1` (Theorem 5). Old versions come from the cache; by
/// default, the current broadcast value is also accepted whenever its
/// version shows it still belongs to the pinned snapshot (provably safe —
/// versions are on air in this method; disable with
/// [`MultiversionCaching::strict`] for the letter-of-the-paper,
/// cache-only rule).
///
/// Unlike multiversion broadcast, the number of versions retained is a
/// property of *each client's cache*, not of the server.
pub struct MultiversionCaching {
    broadcast_fallback: bool,
    queries: BTreeMap<QueryId, McState>,
    last_heard: Option<Cycle>,
    /// Union bitmap over everything any active query has read: one
    /// word-AND pass clears the whole cohort on report-disjoint cycles.
    screen: CohortScreen,
}

/// Renders exactly like the pre-screen derived form: the screen is
/// derived validation state, and protocol renderings feed mc state
/// hashes, which must not change with the representation.
impl fmt::Debug for MultiversionCaching {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MultiversionCaching")
            .field("broadcast_fallback", &self.broadcast_fallback)
            .field("queries", &self.queries)
            .field("last_heard", &self.last_heard)
            .finish()
    }
}

impl MultiversionCaching {
    /// The method with the (safe) broadcast fallback for old-enough
    /// current values.
    pub fn new() -> Self {
        MultiversionCaching {
            broadcast_fallback: true,
            queries: BTreeMap::new(),
            last_heard: None,
            screen: CohortScreen::new(),
        }
    }

    /// The strict variant: after pinning, reads are served from the cache
    /// only, exactly as §4.2 words it.
    pub fn strict() -> Self {
        MultiversionCaching {
            broadcast_fallback: false,
            ..MultiversionCaching::new()
        }
    }

    /// Whether the broadcast fallback is enabled.
    pub fn has_broadcast_fallback(&self) -> bool {
        self.broadcast_fallback
    }
}

impl Default for MultiversionCaching {
    fn default() -> Self {
        MultiversionCaching::new()
    }
}

impl ReadOnlyProtocol for MultiversionCaching {
    fn name(&self) -> &'static str {
        "mv-caching"
    }

    fn cache_mode(&self) -> CacheMode {
        CacheMode::Multiversion
    }

    fn on_control(&mut self, ctrl: &ControlInfo) {
        let n = ctrl.cycle();
        let report = ctrl.invalidation();
        let covered = match self.last_heard {
            None => true,
            Some(h) => n.number() <= h.number().saturating_add(u64::from(report.window())),
        };
        // Batch fast path: one word-AND pass of the cohort's union
        // bitmap settles every query at once on report-disjoint cycles.
        let cohort_clear = covered && self.screen.is_disjoint_from(report);
        for q in self.queries.values_mut() {
            if q.doomed.is_some() || q.pinned.is_some() {
                continue;
            }
            if cohort_clear {
                q.verified_state = n;
                continue;
            }
            if !covered {
                // Gap: pin at the last verified state and continue from
                // the cache — the disconnection tolerance of Table 1.
                q.pinned = Some(q.verified_state);
                continue;
            }
            if report.any_stale_set(
                q.readset.as_slice(),
                q.readset.word_blocks(),
                q.verified_state,
            ) {
                q.pinned = Some(q.verified_state);
            } else {
                q.verified_state = n;
            }
        }
        self.last_heard = Some(n);
    }

    fn on_missed_cycle(&mut self, _cycle: Cycle) {
        // Handled at the next heard report via the window check.
    }

    fn begin_query(&mut self, q: QueryId, now: Cycle) {
        let prev = self.queries.insert(
            q,
            McState {
                readset: ReadSet::new(),
                verified_state: now,
                pinned: None,
                doomed: None,
            },
        );
        assert!(prev.is_none(), "query ids must not be reused");
    }

    fn read_directive(&self, q: QueryId, _item: ItemId, now: Cycle) -> ReadDirective {
        let qs = &self.queries[&q];
        if let Some(reason) = qs.doomed {
            return ReadDirective::Doom(reason);
        }
        match qs.pinned {
            Some(state) => ReadDirective::Read(ReadConstraint {
                state,
                cache_only: !self.broadcast_fallback,
            }),
            None => ReadDirective::Read(ReadConstraint {
                state: now,
                cache_only: false,
            }),
        }
    }

    fn apply_read(
        &mut self,
        q: QueryId,
        item: ItemId,
        candidate: &ReadCandidate,
        now: Cycle,
    ) -> ReadOutcome {
        // lint: allow(panic) — protocol contract: reads only arrive for begun queries
        let qs = self.queries.get_mut(&q).expect("unknown query");
        if let Some(reason) = qs.doomed {
            return ReadOutcome::Rejected(reason);
        }
        let state = qs.pinned.unwrap_or(now);
        if !candidate.current_at(state) {
            let reason = AbortReason::VersionUnavailable;
            qs.doomed = Some(reason);
            return ReadOutcome::Rejected(reason);
        }
        if qs.pinned.is_some() && !self.broadcast_fallback && !candidate.source.is_cache() {
            let reason = AbortReason::VersionUnavailable;
            qs.doomed = Some(reason);
            return ReadOutcome::Rejected(reason);
        }
        qs.readset.insert(item);
        self.screen.note_read(item);
        ReadOutcome::Accepted
    }

    fn finish_query(&mut self, q: QueryId) {
        self.queries.remove(&q);
        if self.queries.is_empty() {
            self.screen.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::Source;
    use bpush_broadcast::InvalidationReport;
    use bpush_types::{Granularity, ItemValue, TxnId};

    fn ctrl(cycle: u64, items: &[u32]) -> ControlInfo {
        let c = Cycle::new(cycle);
        ControlInfo::new(
            c,
            InvalidationReport::new(
                c,
                1,
                items.iter().map(|&i| ItemId::new(i)),
                Granularity::Item,
                1,
            ),
            None,
            None,
        )
    }

    fn cand(from: u64, until: Option<u64>, source: Source) -> ReadCandidate {
        let value = if from == 0 {
            ItemValue::initial()
        } else {
            ItemValue::written_by(TxnId::new(Cycle::new(from - 1), 0))
        };
        ReadCandidate {
            value,
            last_writer_tag: None,
            valid_from: Cycle::new(from),
            valid_until: until.map(Cycle::new),
            source,
        }
    }

    #[test]
    fn pin_at_first_invalidation_and_read_old_cache_versions() {
        let mut p = MultiversionCaching::new();
        let q = QueryId::new(0);
        p.begin_query(q, Cycle::new(2));
        p.on_control(&ctrl(2, &[]));
        assert_eq!(
            p.apply_read(
                q,
                ItemId::new(1),
                &cand(1, None, Source::BroadcastCurrent),
                Cycle::new(2)
            ),
            ReadOutcome::Accepted
        );
        p.on_control(&ctrl(3, &[1])); // c_u = 3, pinned snapshot = 2
        match p.read_directive(q, ItemId::new(4), Cycle::new(3)) {
            ReadDirective::Read(c) => {
                assert_eq!(c.state, Cycle::new(2));
                assert!(!c.cache_only, "default has the broadcast fallback");
            }
            other => panic!("{other:?}"),
        }
        // an old cache version current at state 2 works
        assert_eq!(
            p.apply_read(
                q,
                ItemId::new(4),
                &cand(1, Some(3), Source::CacheOld),
                Cycle::new(3)
            ),
            ReadOutcome::Accepted
        );
        // a version created at state 3 does not
        assert_eq!(
            p.apply_read(
                q,
                ItemId::new(5),
                &cand(3, None, Source::CacheCurrent),
                Cycle::new(3)
            ),
            ReadOutcome::Rejected(AbortReason::VersionUnavailable)
        );
    }

    #[test]
    fn broadcast_fallback_accepts_old_enough_current_values() {
        let mut p = MultiversionCaching::new();
        assert!(p.has_broadcast_fallback());
        let q = QueryId::new(0);
        p.begin_query(q, Cycle::new(2));
        p.on_control(&ctrl(2, &[]));
        p.apply_read(
            q,
            ItemId::new(1),
            &cand(1, None, Source::BroadcastCurrent),
            Cycle::new(2),
        );
        p.on_control(&ctrl(3, &[1]));
        // item 6's broadcast value has version 1 <= pinned state 2: safe
        assert_eq!(
            p.apply_read(
                q,
                ItemId::new(6),
                &cand(1, None, Source::BroadcastCurrent),
                Cycle::new(3)
            ),
            ReadOutcome::Accepted
        );
    }

    #[test]
    fn strict_variant_requires_cache_after_pin() {
        let mut p = MultiversionCaching::strict();
        assert!(!p.has_broadcast_fallback());
        let q = QueryId::new(0);
        p.begin_query(q, Cycle::new(2));
        p.on_control(&ctrl(2, &[]));
        p.apply_read(
            q,
            ItemId::new(1),
            &cand(1, None, Source::BroadcastCurrent),
            Cycle::new(2),
        );
        p.on_control(&ctrl(3, &[1]));
        match p.read_directive(q, ItemId::new(6), Cycle::new(3)) {
            ReadDirective::Read(c) => assert!(c.cache_only),
            other => panic!("{other:?}"),
        }
        assert_eq!(
            p.apply_read(
                q,
                ItemId::new(6),
                &cand(1, None, Source::BroadcastCurrent),
                Cycle::new(3)
            ),
            ReadOutcome::Rejected(AbortReason::VersionUnavailable)
        );
    }

    #[test]
    fn gap_pins_and_query_continues_from_cache() {
        let mut p = MultiversionCaching::new();
        let q = QueryId::new(0);
        p.begin_query(q, Cycle::new(0));
        p.on_control(&ctrl(0, &[]));
        p.apply_read(
            q,
            ItemId::new(1),
            &cand(0, None, Source::BroadcastCurrent),
            Cycle::new(0),
        );
        p.on_control(&ctrl(1, &[]));
        // miss cycles 2-3; resume at 4 with window-1 report (uncovered gap)
        p.on_control(&ctrl(4, &[]));
        match p.read_directive(q, ItemId::new(2), Cycle::new(4)) {
            ReadDirective::Read(c) => assert_eq!(c.state, Cycle::new(1), "pinned at last verified"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unpinned_query_reads_current() {
        let mut p = MultiversionCaching::new();
        let q = QueryId::new(0);
        p.begin_query(q, Cycle::new(7));
        match p.read_directive(q, ItemId::new(0), Cycle::new(7)) {
            ReadDirective::Read(c) => {
                assert_eq!(c.state, Cycle::new(7));
                assert!(!c.cache_only);
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(p.name(), "mv-caching");
        assert_eq!(p.cache_mode(), CacheMode::Multiversion);
    }

    #[test]
    fn finish_releases_state() {
        let mut p = MultiversionCaching::new();
        p.begin_query(QueryId::new(0), Cycle::ZERO);
        p.finish_query(QueryId::new(0));
        assert!(p.queries.is_empty());
    }
}
