//! Serialization-graph testing at the client (§3.3).

use std::collections::BTreeMap;
use std::fmt;

use bpush_broadcast::ControlInfo;
use bpush_sgraph::{Node, SerializationGraph};
use bpush_types::{Cycle, ItemId, QueryId};

use crate::batch::CohortScreen;
use crate::protocol::{
    AbortReason, CacheMode, ReadCandidate, ReadConstraint, ReadDirective, ReadOnlyProtocol,
    ReadOutcome,
};
use crate::readset::ReadSet;

/// Configuration of the SGT method.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SgtConfig {
    /// Use the client cache for reads (the "SGT with caching" curve of
    /// Figure 5; cached entries carry the last-writer tag, §4.1).
    pub use_cache: bool,
    /// The §5.2.2 disconnection enhancement: items carry version numbers,
    /// and after a gap a query only accepts reads of values written
    /// before the gap — which provably keeps cycle detection complete
    /// without the missed control information.
    pub versioned_items: bool,
}

#[derive(Debug)]
struct SgtState {
    readset: ReadSet,
    /// `c_o`: commit cycle of the first transaction that overwrote an
    /// item this query read; pruning keeps subgraphs from here on.
    c_o: Option<Cycle>,
    /// With `versioned_items`, the version bound imposed by gaps: reads
    /// of values with a larger version cannot be certified.
    version_bound: Option<Cycle>,
    doomed: Option<AbortReason>,
}

/// The serialization-graph testing method (§3.3).
///
/// The client maintains a local copy of the server's conflict
/// serialization graph, restricted to recent cycles (Lemma 1), extended
/// with its own active queries. At each cycle it integrates the broadcast
/// graph difference and adds a precedence edge `R → T_f(x)` for every
/// readset item `x` that the augmented invalidation report names
/// (Claim 2: one edge to the *first* writer suffices). A read of a value
/// last written by `T_l` is accepted iff the dependency edge `T_l → R`
/// closes no cycle (Claim 3: one edge from the *last* writer suffices).
///
/// Committed queries observe a database state produced by a serializable
/// execution of a *subset* of the transactions committed during their
/// lifetime — between the invalidation-only method's most-current view
/// and the multiversion method's oldest view (Table 1).
pub struct Sgt {
    config: SgtConfig,
    graph: SerializationGraph,
    queries: BTreeMap<QueryId, SgtState>,
    last_heard: Option<Cycle>,
    /// Union bitmap over everything any active query has read: one
    /// word-AND pass skips the per-query report loops on
    /// report-disjoint cycles.
    screen: CohortScreen,
}

/// Renders exactly like the pre-screen derived form: the screen is
/// derived validation state, and protocol renderings feed mc state
/// hashes, which must not change with the representation.
impl fmt::Debug for Sgt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Sgt")
            .field("config", &self.config)
            .field("graph", &self.graph)
            .field("queries", &self.queries)
            .field("last_heard", &self.last_heard)
            .finish()
    }
}

impl Sgt {
    /// Creates the method with the given configuration.
    pub fn new(config: SgtConfig) -> Self {
        Sgt {
            config,
            graph: SerializationGraph::new(),
            queries: BTreeMap::new(),
            last_heard: None,
            screen: CohortScreen::new(),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> SgtConfig {
        self.config
    }

    /// Size of the locally retained graph (nodes, edges) — the space
    /// overhead Table 1 calls "considerable".
    pub fn graph_size(&self) -> (usize, usize) {
        (self.graph.node_count(), self.graph.edge_count())
    }

    /// Lemma-1 pruning: drop all server subgraphs older than the earliest
    /// `c_o` of any active query, or everything if no query has been
    /// invalidated ("if no items are updated, there is no space or
    /// processing overhead at the client").
    fn prune(&mut self) {
        if self.queries.is_empty() {
            self.graph.clear();
            return;
        }
        let min_co = self
            .queries
            .values()
            .filter(|q| q.doomed.is_none())
            .filter_map(|q| q.c_o)
            .min();
        match min_co {
            Some(bound) => self.graph.prune_before(bound),
            None => {
                // No invalidated query: queries may still hold dependency
                // edges T_l -> R, but with no precedence edge R -> T_f no
                // cycle through R is possible yet; dropping server-only
                // state is safe because future cycles only need subgraphs
                // from the (future) first-invalidation cycle onward.
                let heard = self.last_heard;
                if let Some(h) = heard {
                    self.graph.prune_before(h);
                }
            }
        }
    }
}

impl ReadOnlyProtocol for Sgt {
    fn name(&self) -> &'static str {
        if self.config.use_cache {
            "sgt+cache"
        } else {
            "sgt"
        }
    }

    fn cache_mode(&self) -> CacheMode {
        if self.config.use_cache {
            CacheMode::Plain
        } else {
            CacheMode::None
        }
    }

    fn on_control(&mut self, ctrl: &ControlInfo) {
        let n = ctrl.cycle();
        // 1. Integrate the server graph difference (commits of cycle n−1).
        if let Some(diff) = ctrl.graph_diff() {
            self.graph.apply_diff(diff);
        }
        // 2. Precedence edges for invalidated readset items, to the first
        //    writer named by the augmented report. Only items in the
        //    augmented report represent *new* information (re-reports in
        //    windowed invalidation lists have no first-writer entry and
        //    were processed when first announced).
        // Batch fast path: when the cohort's union bitmap is disjoint
        // from the report, no query can match and the per-query loops
        // are skipped wholesale.
        if let Some(aug) = ctrl.augmented() {
            if !self.screen.is_disjoint_from_augmented(aug) {
                for (q, qs) in self.queries.iter_mut() {
                    if qs.doomed.is_some() {
                        continue;
                    }
                    for (_, t_f) in
                        aug.matches_in_set(qs.readset.as_slice(), qs.readset.word_blocks())
                    {
                        self.graph.add_edge(Node::Query(*q), Node::Txn(t_f));
                        let co = qs.c_o.get_or_insert(t_f.cycle());
                        *co = (*co).min(t_f.cycle());
                    }
                }
            }
        } else if !ctrl.invalidation().is_empty()
            && !self.screen.is_disjoint_from(ctrl.invalidation())
        {
            // The server is not broadcasting SGT information; without
            // first-writer data, invalidated queries cannot be certified.
            for qs in self.queries.values_mut() {
                if qs.doomed.is_none()
                    && ctrl
                        .invalidation()
                        .any_invalidated_set(qs.readset.as_slice(), qs.readset.word_blocks())
                {
                    qs.doomed = Some(AbortReason::Invalidated);
                }
            }
        }
        self.last_heard = Some(n);
        // 3. Space optimization.
        self.prune();
    }

    fn on_missed_cycle(&mut self, cycle: Cycle) {
        for qs in self.queries.values_mut() {
            if qs.doomed.is_some() {
                continue;
            }
            if self.config.versioned_items {
                // Sound recovery: restrict future reads to values written
                // before the gap. Values with version <= last_heard were
                // fully covered by control information already processed.
                let bound = self.last_heard.unwrap_or(Cycle::ZERO);
                let vb = qs.version_bound.get_or_insert(bound);
                *vb = (*vb).min(bound);
            } else {
                qs.doomed = Some(AbortReason::Disconnected);
            }
        }
        let _ = cycle;
    }

    fn begin_query(&mut self, q: QueryId, _now: Cycle) {
        let prev = self.queries.insert(
            q,
            SgtState {
                readset: ReadSet::new(),
                c_o: None,
                version_bound: None,
                doomed: None,
            },
        );
        assert!(prev.is_none(), "query ids must not be reused");
    }

    fn read_directive(&self, q: QueryId, _item: ItemId, now: Cycle) -> ReadDirective {
        let qs = &self.queries[&q];
        if let Some(reason) = qs.doomed {
            return ReadDirective::Doom(reason);
        }
        ReadDirective::Read(ReadConstraint {
            state: now,
            cache_only: false,
        })
    }

    fn apply_read(
        &mut self,
        q: QueryId,
        item: ItemId,
        candidate: &ReadCandidate,
        _now: Cycle,
    ) -> ReadOutcome {
        // lint: allow(panic) — protocol contract: reads only arrive for begun queries
        let qs = self.queries.get_mut(&q).expect("unknown query");
        if let Some(reason) = qs.doomed {
            return ReadOutcome::Rejected(reason);
        }
        if !candidate.current_at(_now) {
            // SGT reads current values only (§3.3); a non-current
            // candidate is an executor bug, not a protocol decision.
            let reason = AbortReason::VersionUnavailable;
            qs.doomed = Some(reason);
            return ReadOutcome::Rejected(reason);
        }
        if let Some(bound) = qs.version_bound {
            if candidate.value.version() > bound {
                let reason = AbortReason::Disconnected;
                qs.doomed = Some(reason);
                return ReadOutcome::Rejected(reason);
            }
        }
        // The dependency edge comes from the transmitted last-writer tag.
        let t_l = candidate
            .last_writer_tag
            .or_else(|| candidate.value.writer());
        match t_l {
            None => {
                // Initial-load value: no writer, no edge, always safe.
                qs.readset.insert(item);
                self.screen.note_read(item);
                ReadOutcome::Accepted
            }
            Some(t_l) => {
                if self.graph.would_close_cycle(Node::Txn(t_l), Node::Query(q)) {
                    let reason = AbortReason::CycleDetected;
                    qs.doomed = Some(reason);
                    ReadOutcome::Rejected(reason)
                } else {
                    self.graph.add_edge(Node::Txn(t_l), Node::Query(q));
                    qs.readset.insert(item);
                    self.screen.note_read(item);
                    ReadOutcome::Accepted
                }
            }
        }
    }

    fn finish_query(&mut self, q: QueryId) {
        self.queries.remove(&q);
        self.graph.remove_query(q);
        self.prune();
        if self.queries.is_empty() {
            self.screen.clear();
        }
    }

    fn space_metrics(&self) -> Option<(usize, usize)> {
        Some(self.graph_size())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::Source;
    use bpush_broadcast::{AugmentedReport, InvalidationReport};
    use bpush_sgraph::GraphDiff;
    use bpush_types::{Granularity, ItemValue, TxnId};

    fn txn(cycle: u64, seq: u32) -> TxnId {
        TxnId::new(Cycle::new(cycle), seq)
    }

    fn candidate_from(writer: Option<TxnId>) -> ReadCandidate {
        let value = match writer {
            Some(t) => ItemValue::written_by(t),
            None => ItemValue::initial(),
        };
        ReadCandidate {
            value,
            last_writer_tag: writer,
            valid_from: value.version(),
            valid_until: None,
            source: Source::BroadcastCurrent,
        }
    }

    /// Control info for cycle `n`: invalidations with first writers, plus
    /// a graph diff of the previous cycle's commits.
    fn ctrl(
        n: u64,
        invalidated: &[(u32, TxnId)],
        committed: &[TxnId],
        edges: &[(TxnId, TxnId)],
    ) -> ControlInfo {
        let cycle = Cycle::new(n);
        let prev = cycle.prev();
        ControlInfo::new(
            cycle,
            InvalidationReport::new(
                cycle,
                1,
                invalidated.iter().map(|&(i, _)| ItemId::new(i)),
                Granularity::Item,
                1,
            ),
            Some(AugmentedReport::new(
                prev,
                invalidated.iter().map(|&(i, t)| (ItemId::new(i), t)),
            )),
            Some(GraphDiff::new(prev, committed.to_vec(), edges.to_vec())),
        )
    }

    #[test]
    fn paper_figure3_cycle_is_detected() {
        // R reads x at cycle 1 (written by T0.0). During cycle 1, T1.0
        // overwrites x. During cycle 2, T2.0 reads something T1.0 wrote
        // (conflict edge T1.0 -> T2.0) and writes y. At cycle 3, R tries
        // to read y (written by T2.0): cycle R -> T1.0 -> T2.0 -> R.
        let mut p = Sgt::new(SgtConfig::default());
        let q = QueryId::new(0);
        p.begin_query(q, Cycle::new(1));
        assert_eq!(
            p.apply_read(
                q,
                ItemId::new(7),
                &candidate_from(Some(txn(0, 0))),
                Cycle::new(1)
            ),
            ReadOutcome::Accepted
        );
        // cycle 2's control: x (item 7) invalidated, first writer T1.0
        p.on_control(&ctrl(2, &[(7, txn(1, 0))], &[txn(1, 0)], &[]));
        // cycle 3's control: T2.0 committed, conflicting with T1.0
        p.on_control(&ctrl(3, &[], &[txn(2, 0)], &[(txn(1, 0), txn(2, 0))]));
        // reading y from T2.0 must now be rejected
        assert_eq!(
            p.apply_read(
                q,
                ItemId::new(9),
                &candidate_from(Some(txn(2, 0))),
                Cycle::new(3)
            ),
            ReadOutcome::Rejected(AbortReason::CycleDetected)
        );
        assert_eq!(
            p.read_directive(q, ItemId::new(9), Cycle::new(3)),
            ReadDirective::Doom(AbortReason::CycleDetected)
        );
    }

    #[test]
    fn invalidation_without_dependent_read_commits() {
        // Unlike invalidation-only, an overwrite alone never dooms the
        // query — only a cycle does.
        let mut p = Sgt::new(SgtConfig::default());
        let q = QueryId::new(0);
        p.begin_query(q, Cycle::new(1));
        p.apply_read(
            q,
            ItemId::new(7),
            &candidate_from(Some(txn(0, 0))),
            Cycle::new(1),
        );
        p.on_control(&ctrl(2, &[(7, txn(1, 0))], &[txn(1, 0)], &[]));
        // reading an item whose writer is unrelated to T1.0 is fine
        assert_eq!(
            p.apply_read(
                q,
                ItemId::new(8),
                &candidate_from(Some(txn(0, 1))),
                Cycle::new(2)
            ),
            ReadOutcome::Accepted
        );
        // reading an initial-load value is always fine
        assert_eq!(
            p.apply_read(q, ItemId::new(9), &candidate_from(None), Cycle::new(2)),
            ReadOutcome::Accepted
        );
    }

    #[test]
    fn direct_read_from_overwriter_is_rejected() {
        // R -> T_f and then a read from T_f itself: cycle of length 2.
        let mut p = Sgt::new(SgtConfig::default());
        let q = QueryId::new(0);
        p.begin_query(q, Cycle::new(1));
        p.apply_read(
            q,
            ItemId::new(7),
            &candidate_from(Some(txn(0, 0))),
            Cycle::new(1),
        );
        p.on_control(&ctrl(2, &[(7, txn(1, 0))], &[txn(1, 0)], &[]));
        assert_eq!(
            p.apply_read(
                q,
                ItemId::new(8),
                &candidate_from(Some(txn(1, 0))),
                Cycle::new(2)
            ),
            ReadOutcome::Rejected(AbortReason::CycleDetected)
        );
    }

    #[test]
    fn pruning_clears_graph_when_no_invalidation() {
        let mut p = Sgt::new(SgtConfig::default());
        let q = QueryId::new(0);
        p.begin_query(q, Cycle::new(1));
        p.apply_read(
            q,
            ItemId::new(7),
            &candidate_from(Some(txn(0, 0))),
            Cycle::new(1),
        );
        // lots of unrelated server activity
        for n in 2..10 {
            p.on_control(&ctrl(
                n,
                &[],
                &[txn(n - 1, 0), txn(n - 1, 1)],
                &[(txn(n - 1, 0), txn(n - 1, 1))],
            ));
        }
        let (nodes, _) = p.graph_size();
        // only the most recent cycle's subgraph plus query/edge endpoints
        // may survive; far fewer than the 16 committed transactions
        assert!(
            nodes <= 6,
            "pruning must bound the graph, got {nodes} nodes"
        );
    }

    #[test]
    fn pruning_keeps_window_from_first_invalidation() {
        let mut p = Sgt::new(SgtConfig::default());
        let q = QueryId::new(0);
        p.begin_query(q, Cycle::new(1));
        p.apply_read(
            q,
            ItemId::new(7),
            &candidate_from(Some(txn(0, 0))),
            Cycle::new(1),
        );
        p.on_control(&ctrl(2, &[(7, txn(1, 0))], &[txn(1, 0)], &[]));
        for n in 3..8 {
            p.on_control(&ctrl(
                n,
                &[],
                &[txn(n - 1, 0)],
                &[(txn(n - 2, 0), txn(n - 1, 0))],
            ));
        }
        // the chain from T1.0 (cycle c_o = 1) must be fully retained:
        // reading from the end of the chain must still detect the cycle
        assert_eq!(
            p.apply_read(
                q,
                ItemId::new(9),
                &candidate_from(Some(txn(6, 0))),
                Cycle::new(7)
            ),
            ReadOutcome::Rejected(AbortReason::CycleDetected)
        );
    }

    #[test]
    fn gap_dooms_unversioned_queries() {
        let mut p = Sgt::new(SgtConfig::default());
        let q = QueryId::new(0);
        p.begin_query(q, Cycle::new(1));
        p.apply_read(
            q,
            ItemId::new(7),
            &candidate_from(Some(txn(0, 0))),
            Cycle::new(1),
        );
        p.on_missed_cycle(Cycle::new(2));
        assert_eq!(
            p.read_directive(q, ItemId::new(8), Cycle::new(3)),
            ReadDirective::Doom(AbortReason::Disconnected)
        );
    }

    #[test]
    fn versioned_items_survive_gaps_with_old_reads() {
        let mut p = Sgt::new(SgtConfig {
            versioned_items: true,
            ..SgtConfig::default()
        });
        let q = QueryId::new(0);
        p.begin_query(q, Cycle::new(1));
        p.on_control(&ctrl(1, &[], &[txn(0, 0)], &[]));
        p.apply_read(
            q,
            ItemId::new(7),
            &candidate_from(Some(txn(0, 0))),
            Cycle::new(1),
        );
        p.on_missed_cycle(Cycle::new(2));
        p.on_control(&ctrl(3, &[], &[txn(2, 0)], &[]));
        // a value written before the gap (version <= 1) is accepted
        assert_eq!(
            p.apply_read(
                q,
                ItemId::new(8),
                &candidate_from(Some(txn(0, 1))),
                Cycle::new(3)
            ),
            ReadOutcome::Accepted
        );
        // a value written during/after the gap is not certifiable
        assert_eq!(
            p.apply_read(
                q,
                ItemId::new(9),
                &candidate_from(Some(txn(2, 0))),
                Cycle::new(3)
            ),
            ReadOutcome::Rejected(AbortReason::Disconnected)
        );
    }

    #[test]
    fn missing_server_sgt_info_falls_back_to_invalidation() {
        let mut p = Sgt::new(SgtConfig::default());
        let q = QueryId::new(0);
        p.begin_query(q, Cycle::new(1));
        assert_eq!(
            p.apply_read(
                q,
                ItemId::new(7),
                &candidate_from(Some(txn(0, 0))),
                Cycle::new(1)
            ),
            ReadOutcome::Accepted
        );
        // a bare invalidation report without augmented info
        let bare = ControlInfo::new(
            Cycle::new(2),
            InvalidationReport::new(Cycle::new(2), 1, [ItemId::new(7)], Granularity::Item, 1),
            None,
            None,
        );
        p.on_control(&bare);
        assert_eq!(
            p.read_directive(q, ItemId::new(8), Cycle::new(2)),
            ReadDirective::Doom(AbortReason::Invalidated)
        );
    }

    #[test]
    fn names_and_cache_modes() {
        assert_eq!(Sgt::new(SgtConfig::default()).name(), "sgt");
        assert_eq!(Sgt::new(SgtConfig::default()).cache_mode(), CacheMode::None);
        let cached = Sgt::new(SgtConfig {
            use_cache: true,
            ..Default::default()
        });
        assert_eq!(cached.name(), "sgt+cache");
        assert_eq!(cached.cache_mode(), CacheMode::Plain);
        assert!(cached.config().use_cache);
    }

    #[test]
    fn finish_query_removes_graph_node() {
        let mut p = Sgt::new(SgtConfig::default());
        let q = QueryId::new(0);
        p.begin_query(q, Cycle::new(1));
        p.apply_read(
            q,
            ItemId::new(7),
            &candidate_from(Some(txn(0, 0))),
            Cycle::new(1),
        );
        p.finish_query(q);
        assert_eq!(p.graph_size().0, 0, "graph fully pruned after last query");
    }
}
