//! Sorted-slice readsets for the validation hot paths.
//!
//! Every client method keeps, per active query, the set of items the
//! query has read, and intersects it once per broadcast cycle with the
//! invalidation (and, for SGT, augmented) report. A sorted, deduplicated
//! `Vec<ItemId>` makes that intersection a galloping merge over two
//! contiguous arrays (`InvalidationReport::any_stale`,
//! `AugmentedReport::matches_in` in `bpush-broadcast`) instead of one
//! ordered-set probe per report entry.
//!
//! Alongside the sorted slice the set maintains a *dense word-block*
//! form: one bit per item over the contiguous 64-bit-word range spanned
//! by the items read so far. Reports carry the matching bitmap over
//! their own item range, so the per-cycle membership probes collapse to
//! a handful of word ANDs (`InvalidationReport::any_stale_set`) as long
//! as the ids stay dense; a readset that spans more than
//! [`ReadSet::MAX_SPAN_WORDS`] words permanently falls back to the
//! galloping merge. Both forms always answer identically — the galloping
//! path is kept as the differential oracle.

// bpush-lint: sans_io — protocol core: readsets are pure sorted-slice arithmetic, no clocks/threads/files/sockets
use bpush_types::ItemId;

/// A query's readset: the items it has read so far, sorted ascending and
/// deduplicated.
///
/// Queries read one item per broadcast slot, so insertion is rare
/// compared to the per-cycle report intersections; the `Vec` keeps the
/// hot side contiguous and allocation-free. Iteration order is the item
/// order — fully deterministic, like the `BTreeSet` it replaces.
#[derive(Clone)]
pub struct ReadSet {
    items: Vec<ItemId>,
    /// First 64-bit word of the dense block: bit `b` of `words[w]` is
    /// item `(base_word + w) * 64 + b`. Maintained eagerly on insert.
    base_word: u32,
    words: Vec<u64>,
    /// Cleared permanently once the item span exceeds
    /// [`ReadSet::MAX_SPAN_WORDS`] words; a pure function of the final
    /// item set (the span only grows), so insertion order never matters.
    dense: bool,
}

impl ReadSet {
    /// Widest id span (in 64-bit words) the dense word block covers:
    /// 1024 words = 65,536 item ids, comfortably above every simulated
    /// database while bounding worst-case memory for adversarial ids.
    pub const MAX_SPAN_WORDS: usize = 1024;

    /// An empty readset.
    pub fn new() -> Self {
        ReadSet::default()
    }

    /// Records a read of `item`. Returns `true` if the item is new.
    pub fn insert(&mut self, item: ItemId) -> bool {
        match self.items.binary_search(&item) {
            Ok(_) => false,
            Err(pos) => {
                self.items.insert(pos, item);
                self.note_word(item);
                true
            }
        }
    }

    /// Extends the dense word block to cover `item`, degrading to the
    /// slice-only form when the span cap is exceeded.
    fn note_word(&mut self, item: ItemId) {
        if !self.dense {
            return;
        }
        let w = item.index() >> 6;
        let bit = 1u64 << (item.index() & 63);
        if self.words.is_empty() {
            self.base_word = w;
            self.words.push(bit);
            return;
        }
        if w < self.base_word {
            let grow = (self.base_word - w) as usize;
            if grow + self.words.len() > Self::MAX_SPAN_WORDS {
                self.degrade();
                return;
            }
            // prepend `grow` zero words
            let old_len = self.words.len();
            self.words.resize(old_len + grow, 0);
            self.words.rotate_right(grow);
            self.base_word = w;
        } else {
            let off = (w - self.base_word) as usize;
            if off >= Self::MAX_SPAN_WORDS {
                self.degrade();
                return;
            }
            if off >= self.words.len() {
                self.words.resize(off + 1, 0);
            }
        }
        let off = (w - self.base_word) as usize;
        if let Some(slot) = self.words.get_mut(off) {
            *slot |= bit;
        }
    }

    fn degrade(&mut self) {
        self.dense = false;
        self.base_word = 0;
        self.words = Vec::new();
    }

    /// The dense word-block form, when the items read so far span at most
    /// [`ReadSet::MAX_SPAN_WORDS`] words: `(base_word, words)` with bit
    /// `b` of `words[w]` standing for item `(base_word + w) * 64 + b`.
    /// `None` once the set has degraded to the slice-only form — callers
    /// then fall back to the galloping probes.
    // bpush-lint: hot_path — per-cycle accessor feeding the word-AND report probes
    pub fn word_blocks(&self) -> Option<(u32, &[u64])> {
        if self.dense && !self.words.is_empty() {
            Some((self.base_word, self.words.as_slice()))
        } else {
            None
        }
    }

    /// Whether `item` has been read.
    pub fn contains(&self, item: ItemId) -> bool {
        self.items.binary_search(&item).is_ok()
    }

    /// Number of distinct items read.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether nothing has been read yet.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The items as a sorted slice — the form the report-intersection
    /// primitives in `bpush-broadcast` take.
    pub fn as_slice(&self) -> &[ItemId] {
        &self.items
    }

    /// Iterates the items in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = ItemId> + '_ {
        self.items.iter().copied()
    }
}

impl Default for ReadSet {
    fn default() -> Self {
        ReadSet {
            items: Vec::new(),
            base_word: 0,
            words: Vec::new(),
            dense: true,
        }
    }
}

/// Renders exactly like the pre-word-block derived form (`ReadSet {
/// items: [...] }`): the word block is a cached projection of `items`,
/// and protocol state snapshots (mc state hashes) must not change with
/// the representation.
impl std::fmt::Debug for ReadSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReadSet")
            .field("items", &self.items)
            .finish()
    }
}

/// Equality is on the item set alone; the word block is derived state.
impl PartialEq for ReadSet {
    fn eq(&self, other: &Self) -> bool {
        self.items == other.items
    }
}

impl Eq for ReadSet {}

impl FromIterator<ItemId> for ReadSet {
    fn from_iter<I: IntoIterator<Item = ItemId>>(iter: I) -> Self {
        let mut set = ReadSet::new();
        for item in iter {
            set.insert(item);
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_keeps_sorted_and_deduped() {
        let mut s = ReadSet::new();
        assert!(s.insert(ItemId::new(5)));
        assert!(s.insert(ItemId::new(1)));
        assert!(s.insert(ItemId::new(3)));
        assert!(!s.insert(ItemId::new(5)));
        assert_eq!(s.len(), 3);
        assert_eq!(
            s.as_slice(),
            &[ItemId::new(1), ItemId::new(3), ItemId::new(5)]
        );
        assert!(s.contains(ItemId::new(3)));
        assert!(!s.contains(ItemId::new(2)));
    }

    #[test]
    fn empty_and_from_iter() {
        let s = ReadSet::new();
        assert!(s.is_empty());
        assert!(s.word_blocks().is_none(), "no words before the first read");
        let s: ReadSet = [ItemId::new(9), ItemId::new(9), ItemId::new(0)]
            .into_iter()
            .collect();
        assert_eq!(
            s.iter().collect::<Vec<_>>(),
            [ItemId::new(0), ItemId::new(9)]
        );
    }

    fn bit_set(blocks: (u32, &[u64]), id: u32) -> bool {
        let (base, words) = blocks;
        let w = id >> 6;
        w >= base
            && words
                .get((w - base) as usize)
                .is_some_and(|word| word & (1u64 << (id & 63)) != 0)
    }

    #[test]
    fn word_blocks_mirror_membership() {
        let ids = [5u32, 64, 63, 700, 66, 5];
        let s: ReadSet = ids.iter().copied().map(ItemId::new).collect();
        let blocks = s.word_blocks().expect("span is narrow, stays dense");
        for id in 0..800 {
            assert_eq!(
                bit_set(blocks, id),
                s.contains(ItemId::new(id)),
                "bit for item {id}"
            );
        }
        assert_eq!(blocks.0, 0, "base word follows the smallest item");
    }

    #[test]
    fn word_blocks_grow_downward() {
        let mut s = ReadSet::new();
        s.insert(ItemId::new(10_000));
        s.insert(ItemId::new(9_000));
        let blocks = s.word_blocks().expect("dense");
        assert_eq!(blocks.0, 9_000 >> 6);
        assert!(bit_set(blocks, 10_000));
        assert!(bit_set(blocks, 9_000));
        assert!(!bit_set(blocks, 9_001));
    }

    #[test]
    fn wide_span_degrades_to_slice_only() {
        let mut s = ReadSet::new();
        s.insert(ItemId::new(0));
        s.insert(ItemId::new(u32::MAX));
        assert!(s.word_blocks().is_none(), "span above the cap degrades");
        // behavior (membership) is unaffected
        assert!(s.contains(ItemId::new(0)));
        assert!(s.contains(ItemId::new(u32::MAX)));
        // and the degrade is permanent: later narrow inserts stay slice-only
        s.insert(ItemId::new(1));
        assert!(s.word_blocks().is_none());
    }

    #[test]
    fn degrade_is_insertion_order_independent() {
        let wide = [0u32, 70_000, 3];
        let mut fwd = ReadSet::new();
        for &i in &wide {
            fwd.insert(ItemId::new(i));
        }
        let mut rev = ReadSet::new();
        for &i in wide.iter().rev() {
            rev.insert(ItemId::new(i));
        }
        assert_eq!(fwd, rev);
        assert_eq!(fwd.word_blocks().is_none(), rev.word_blocks().is_none());
    }

    #[test]
    fn debug_and_eq_ignore_the_word_block() {
        let a: ReadSet = [ItemId::new(1), ItemId::new(9)].into_iter().collect();
        let mut b = ReadSet::new();
        b.insert(ItemId::new(9));
        b.insert(ItemId::new(1));
        assert_eq!(a, b);
        // the rendering protocol snapshots hash must not mention words
        let dbg = format!("{a:?}");
        assert!(dbg.starts_with("ReadSet { items: ["), "{dbg}");
        assert!(!dbg.contains("words"), "{dbg}");
    }
}
