//! Sorted-slice readsets for the validation hot paths.
//!
//! Every client method keeps, per active query, the set of items the
//! query has read, and intersects it once per broadcast cycle with the
//! invalidation (and, for SGT, augmented) report. A sorted, deduplicated
//! `Vec<ItemId>` makes that intersection a galloping merge over two
//! contiguous arrays (`InvalidationReport::any_stale`,
//! `AugmentedReport::matches_in` in `bpush-broadcast`) instead of one
//! ordered-set probe per report entry.

// bpush-lint: sans_io — protocol core: readsets are pure sorted-slice arithmetic, no clocks/threads/files/sockets
use bpush_types::ItemId;

/// A query's readset: the items it has read so far, sorted ascending and
/// deduplicated.
///
/// Queries read one item per broadcast slot, so insertion is rare
/// compared to the per-cycle report intersections; the `Vec` keeps the
/// hot side contiguous and allocation-free. Iteration order is the item
/// order — fully deterministic, like the `BTreeSet` it replaces.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReadSet {
    items: Vec<ItemId>,
}

impl ReadSet {
    /// An empty readset.
    pub fn new() -> Self {
        ReadSet::default()
    }

    /// Records a read of `item`. Returns `true` if the item is new.
    pub fn insert(&mut self, item: ItemId) -> bool {
        match self.items.binary_search(&item) {
            Ok(_) => false,
            Err(pos) => {
                self.items.insert(pos, item);
                true
            }
        }
    }

    /// Whether `item` has been read.
    pub fn contains(&self, item: ItemId) -> bool {
        self.items.binary_search(&item).is_ok()
    }

    /// Number of distinct items read.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether nothing has been read yet.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The items as a sorted slice — the form the report-intersection
    /// primitives in `bpush-broadcast` take.
    pub fn as_slice(&self) -> &[ItemId] {
        &self.items
    }

    /// Iterates the items in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = ItemId> + '_ {
        self.items.iter().copied()
    }
}

impl FromIterator<ItemId> for ReadSet {
    fn from_iter<I: IntoIterator<Item = ItemId>>(iter: I) -> Self {
        let mut set = ReadSet::new();
        for item in iter {
            set.insert(item);
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_keeps_sorted_and_deduped() {
        let mut s = ReadSet::new();
        assert!(s.insert(ItemId::new(5)));
        assert!(s.insert(ItemId::new(1)));
        assert!(s.insert(ItemId::new(3)));
        assert!(!s.insert(ItemId::new(5)));
        assert_eq!(s.len(), 3);
        assert_eq!(
            s.as_slice(),
            &[ItemId::new(1), ItemId::new(3), ItemId::new(5)]
        );
        assert!(s.contains(ItemId::new(3)));
        assert!(!s.contains(ItemId::new(2)));
    }

    #[test]
    fn empty_and_from_iter() {
        let s = ReadSet::new();
        assert!(s.is_empty());
        let s: ReadSet = [ItemId::new(9), ItemId::new(9), ItemId::new(0)]
            .into_iter()
            .collect();
        assert_eq!(
            s.iter().collect::<Vec<_>>(),
            [ItemId::new(0), ItemId::new(9)]
        );
    }
}
