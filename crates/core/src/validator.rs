//! After-the-fact serializability checking — the executable form of the
//! paper's correctness criterion (§2.2).
//!
//! A committed read-only transaction is correct iff its readset is a
//! subset of a consistent database state, i.e. iff there is a point in
//! the server's serial history at which *all* the values it read were
//! simultaneously current. Because the server executes update
//! transactions serially (and [`bpush_types::TxnId`]'s order *is* that
//! serial order), the check reduces to an interval intersection: the
//! value read for item `x` is current from its writer until the next
//! write of `x`; the transaction is serializable iff the intersection of
//! those intervals over the whole readset is non-empty.
//!
//! Every protocol in this crate is exercised against this validator in
//! the integration and property tests: no committed readset may ever
//! fail it, whatever the workload, cache behaviour or disconnection
//! pattern.

use std::fmt;

use bpush_server::WriteHistory;
use bpush_types::{ItemId, ItemValue, TxnId};

/// One read of a committed query: the item and the exact value observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadRecord {
    /// The item read.
    pub item: ItemId,
    /// The value observed.
    pub value: ItemValue,
}

impl ReadRecord {
    /// Pairs an item with the value a query read for it.
    pub fn new(item: ItemId, value: ItemValue) -> Self {
        ReadRecord { item, value }
    }
}

/// The serial interval over which a readset is simultaneously current:
/// strictly after `after` committed (or from the initial load if `None`)
/// and strictly before `before` committed (or forever if `None`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ValidInterval {
    /// The latest writer among the values read.
    pub after: Option<TxnId>,
    /// The earliest transaction that overwrote any value read.
    pub before: Option<TxnId>,
}

/// A readset that corresponds to no consistent database state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConsistencyViolation {
    /// A value whose writer commits at-or-after `stale_overwrite` —
    /// the witness pair proving the intervals cannot intersect.
    pub fresh_writer: TxnId,
    /// The overwrite that superseded another value read, before
    /// `fresh_writer` committed.
    pub stale_overwrite: TxnId,
}

impl fmt::Display for ConsistencyViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "readset mixes a value written by {} with a value already overwritten by {}",
            self.fresh_writer, self.stale_overwrite
        )
    }
}

impl std::error::Error for ConsistencyViolation {}

/// Checks committed readsets against the server's ground-truth history.
#[derive(Debug, Clone, Copy)]
pub struct SerializabilityValidator<'a> {
    history: &'a WriteHistory,
}

impl<'a> SerializabilityValidator<'a> {
    /// Creates a validator over `history`.
    pub fn new(history: &'a WriteHistory) -> Self {
        SerializabilityValidator { history }
    }

    /// Verifies that `reads` is a subset of some consistent database
    /// state, returning the witnessing serial interval.
    ///
    /// # Errors
    /// Returns [`ConsistencyViolation`] with a witness pair when the
    /// intervals cannot intersect.
    ///
    /// # Panics
    /// Panics if a read value was never committed according to the
    /// history — that would be a broadcast-substrate bug, not a protocol
    /// anomaly.
    pub fn check(&self, reads: &[ReadRecord]) -> Result<ValidInterval, ConsistencyViolation> {
        // after = max over writers (None = initial load = -inf)
        let mut after: Option<TxnId> = None;
        // before = min over next-overwrites (None = +inf)
        let mut before: Option<TxnId> = None;
        for r in reads {
            after = after.max(r.value.writer());
            if let Some(over) = self.history.next_overwrite(r.item, r.value) {
                // lint: allow(panic) — history stores committed writes, which always carry a writer
                let over = over.writer().expect("overwrites are committed writes");
                before = Some(match before {
                    Some(b) => b.min(over),
                    None => over,
                });
            }
        }
        match (after, before) {
            (Some(a), Some(b)) if a >= b => Err(ConsistencyViolation {
                fresh_writer: a,
                stale_overwrite: b,
            }),
            _ => Ok(ValidInterval { after, before }),
        }
    }

    /// Convenience: `check` but a plain boolean.
    pub fn is_consistent(&self, reads: &[ReadRecord]) -> bool {
        self.check(reads).is_ok()
    }

    /// The paper's exact correctness criterion (§2.2): the readset must
    /// correspond to a state produced by *some serializable execution* of
    /// server transactions — not necessarily a prefix of the actual
    /// commit order. This is weaker than [`SerializabilityValidator::check`]:
    /// the SGT method (§3.3) commits readsets that pass this test but can
    /// fail the prefix-snapshot test, because non-conflicting server
    /// transactions may be reordered around the query.
    ///
    /// Given the server's conflict graph, the query closes a cycle iff
    /// some transaction that *overwrote* a value it read reaches (or is)
    /// some transaction whose value it read.
    ///
    /// # Errors
    /// Returns [`ConsistencyViolation`] with a witnessing pair when a
    /// cycle through the query exists.
    pub fn check_serializable(
        &self,
        graph: &bpush_sgraph::SerializationGraph,
        reads: &[ReadRecord],
    ) -> Result<(), ConsistencyViolation> {
        use bpush_sgraph::Node;
        // in-edges to the query: writers of values read
        let writers: std::collections::BTreeSet<TxnId> =
            reads.iter().filter_map(|r| r.value.writer()).collect();
        // out-edges from the query: the first overwrite of each value read
        let overwriters: Vec<TxnId> = reads
            .iter()
            .filter_map(|r| self.history.next_overwrite(r.item, r.value))
            // lint: allow(panic) — history stores committed writes, which always carry a writer
            .map(|v| v.writer().expect("overwrites are committed writes"))
            .collect();
        for &o in &overwriters {
            if writers.contains(&o) {
                return Err(ConsistencyViolation {
                    fresh_writer: o,
                    stale_overwrite: o,
                });
            }
            // DFS from the overwriter through the server conflict graph
            let mut stack = vec![Node::Txn(o)];
            let mut seen = std::collections::BTreeSet::new();
            while let Some(n) = stack.pop() {
                if !seen.insert(n) {
                    continue;
                }
                if let Some(t) = n.as_txn() {
                    if t != o && writers.contains(&t) {
                        return Err(ConsistencyViolation {
                            fresh_writer: t,
                            stale_overwrite: o,
                        });
                    }
                }
                stack.extend_from_slice(graph.successors(n));
            }
        }
        Ok(())
    }
}

/// Batch form of [`SerializabilityValidator::check_serializable`] for
/// validating many committed readsets against one (final) conflict
/// graph: the transactions reachable from each overwriter are computed
/// once, memoized as a sorted list, and every readset's check becomes a
/// merge intersection of two sorted sequences instead of a fresh DFS.
///
/// Verdicts are identical to the per-readset check (the differential
/// proptests pin this); the *witness pair* inside a violation may
/// differ, because the DFS reports the first hit in traversal order
/// while the merge reports the smallest.
#[derive(Debug)]
pub struct SerializabilityBatch<'a> {
    history: &'a WriteHistory,
    graph: &'a bpush_sgraph::SerializationGraph,
    /// Overwriter -> sorted transactions reachable from it (including
    /// itself when it lies on a cycle). Borrowing the graph for the
    /// batch's whole lifetime is what makes the memo sound.
    reach: std::collections::BTreeMap<TxnId, Vec<TxnId>>,
    /// Scratch for the per-readset sorted writer list, reused across
    /// checks.
    writers: Vec<TxnId>,
}

impl<'a> SerializabilityBatch<'a> {
    /// Creates a batch over the final `history` and conflict `graph`.
    pub fn new(history: &'a WriteHistory, graph: &'a bpush_sgraph::SerializationGraph) -> Self {
        SerializabilityBatch {
            history,
            graph,
            reach: std::collections::BTreeMap::new(),
            writers: Vec::new(),
        }
    }

    /// The sorted transactions reachable from `o` in the conflict graph,
    /// computed on first use.
    fn reachable(&mut self, o: TxnId) -> &[TxnId] {
        let graph = self.graph;
        self.reach.entry(o).or_insert_with(|| {
            use bpush_sgraph::Node;
            let mut txns = std::collections::BTreeSet::new();
            let mut stack = vec![Node::Txn(o)];
            let mut seen = std::collections::BTreeSet::new();
            while let Some(n) = stack.pop() {
                if !seen.insert(n) {
                    continue;
                }
                if let Some(t) = n.as_txn() {
                    txns.insert(t);
                }
                stack.extend_from_slice(graph.successors(n));
            }
            txns.into_iter().collect()
        })
    }

    /// Batch equivalent of
    /// [`SerializabilityValidator::check_serializable`] for one readset.
    ///
    /// # Errors
    /// Returns [`ConsistencyViolation`] with a witnessing pair when a
    /// cycle through the query exists.
    pub fn check(&mut self, reads: &[ReadRecord]) -> Result<(), ConsistencyViolation> {
        self.writers.clear();
        self.writers
            .extend(reads.iter().filter_map(|r| r.value.writer()));
        self.writers.sort_unstable();
        self.writers.dedup();
        for r in reads {
            let Some(over) = self.history.next_overwrite(r.item, r.value) else {
                continue;
            };
            // committed overwrites always carry a writer; a tagless one
            // would be a substrate bug the per-readset oracle panics on
            let Some(o) = over.writer() else { continue };
            if self.writers.binary_search(&o).is_ok() {
                return Err(ConsistencyViolation {
                    fresh_writer: o,
                    stale_overwrite: o,
                });
            }
            // writers is borrowed around the reachable() call below, so
            // swap it out of self for the merge
            let writers = std::mem::take(&mut self.writers);
            let hit = merge_hit(self.reachable(o), &writers, o);
            self.writers = writers;
            if let Some(t) = hit {
                return Err(ConsistencyViolation {
                    fresh_writer: t,
                    stale_overwrite: o,
                });
            }
        }
        Ok(())
    }
}

/// First transaction (in id order) present in both sorted sequences,
/// ignoring `skip` — the merge-intersection core of the batch check.
fn merge_hit(reach: &[TxnId], writers: &[TxnId], skip: TxnId) -> Option<TxnId> {
    let mut ri = reach.iter().peekable();
    let mut wi = writers.iter().peekable();
    while let (Some(&&r), Some(&&w)) = (ri.peek(), wi.peek()) {
        match r.cmp(&w) {
            std::cmp::Ordering::Less => {
                ri.next();
            }
            std::cmp::Ordering::Greater => {
                wi.next();
            }
            std::cmp::Ordering::Equal => {
                if r != skip {
                    return Some(r);
                }
                ri.next();
                wi.next();
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpush_types::Cycle;

    fn t(cycle: u64, seq: u32) -> TxnId {
        TxnId::new(Cycle::new(cycle), seq)
    }

    fn v(writer: TxnId) -> ItemValue {
        ItemValue::written_by(writer)
    }

    fn x(i: u32) -> ItemId {
        ItemId::new(i)
    }

    /// History: x0 written by T1.0 then T3.0; x1 written by T2.0.
    fn history() -> WriteHistory {
        let mut h = WriteHistory::new();
        h.record(x(0), v(t(1, 0)));
        h.record(x(1), v(t(2, 0)));
        h.record(x(0), v(t(3, 0)));
        h
    }

    #[test]
    fn empty_readset_is_consistent() {
        let h = history();
        let val = SerializabilityValidator::new(&h);
        let interval = val.check(&[]).unwrap();
        assert_eq!(
            interval,
            ValidInterval {
                after: None,
                before: None
            }
        );
    }

    #[test]
    fn all_initial_values_are_consistent() {
        let h = history();
        let val = SerializabilityValidator::new(&h);
        let reads = [
            ReadRecord::new(x(0), ItemValue::initial()),
            ReadRecord::new(x(1), ItemValue::initial()),
        ];
        let interval = val.check(&reads).unwrap();
        assert_eq!(interval.after, None);
        assert_eq!(
            interval.before,
            Some(t(1, 0)),
            "valid until the first write"
        );
    }

    #[test]
    fn snapshot_readsets_are_consistent() {
        let h = history();
        let val = SerializabilityValidator::new(&h);
        // state after T2.0: x0 = T1.0's value, x1 = T2.0's value
        let reads = [
            ReadRecord::new(x(0), v(t(1, 0))),
            ReadRecord::new(x(1), v(t(2, 0))),
        ];
        let interval = val.check(&reads).unwrap();
        assert_eq!(interval.after, Some(t(2, 0)));
        assert_eq!(interval.before, Some(t(3, 0)));
        assert!(val.is_consistent(&reads));
    }

    #[test]
    fn torn_readset_is_rejected() {
        let h = history();
        let val = SerializabilityValidator::new(&h);
        // x0's *old* value (overwritten by T3.0)... fine so far
        // combined with nothing newer: consistent
        assert!(val.is_consistent(&[ReadRecord::new(x(0), v(t(1, 0)))]));
        // but initial x0 (overwritten by T1.0) + x1 from T2.0 is torn:
        // x1's value requires being after T2.0, x0's initial value
        // requires being before T1.0.
        let torn = [
            ReadRecord::new(x(0), ItemValue::initial()),
            ReadRecord::new(x(1), v(t(2, 0))),
        ];
        let err = val.check(&torn).unwrap_err();
        assert_eq!(err.fresh_writer, t(2, 0));
        assert_eq!(err.stale_overwrite, t(1, 0));
        assert!(err.to_string().contains("overwritten"));
    }

    #[test]
    fn current_values_are_consistent() {
        let h = history();
        let val = SerializabilityValidator::new(&h);
        let reads = [
            ReadRecord::new(x(0), v(t(3, 0))),
            ReadRecord::new(x(1), v(t(2, 0))),
        ];
        let interval = val.check(&reads).unwrap();
        assert_eq!(interval.after, Some(t(3, 0)));
        assert_eq!(interval.before, None);
    }

    #[test]
    fn batch_check_agrees_with_per_readset_dfs() {
        use bpush_sgraph::{Node, SerializationGraph};
        let h = history();
        let val = SerializabilityValidator::new(&h);
        let mut graph = SerializationGraph::new();
        // conflict chain T1.0 -> T2.0 -> T3.0 plus a back edge forming a
        // cycle T2.0 -> T3.0 -> T2.0
        graph.add_edge(Node::Txn(t(1, 0)), Node::Txn(t(2, 0)));
        graph.add_edge(Node::Txn(t(2, 0)), Node::Txn(t(3, 0)));
        graph.add_edge(Node::Txn(t(3, 0)), Node::Txn(t(2, 0)));
        let mut batch = SerializabilityBatch::new(&h, &graph);
        let readsets: Vec<Vec<ReadRecord>> = vec![
            vec![],
            vec![ReadRecord::new(x(0), v(t(1, 0)))],
            vec![
                ReadRecord::new(x(0), v(t(1, 0))),
                ReadRecord::new(x(1), v(t(2, 0))),
            ],
            vec![
                ReadRecord::new(x(0), ItemValue::initial()),
                ReadRecord::new(x(1), v(t(2, 0))),
            ],
            vec![
                ReadRecord::new(x(0), v(t(3, 0))),
                ReadRecord::new(x(1), v(t(2, 0))),
            ],
        ];
        for reads in &readsets {
            let oracle = val.check_serializable(&graph, reads).is_ok();
            assert_eq!(
                batch.check(reads).is_ok(),
                oracle,
                "verdicts must agree on {reads:?}"
            );
            // memoization must not change later verdicts: re-check
            assert_eq!(batch.check(reads).is_ok(), oracle);
        }
    }

    #[test]
    fn boundary_equal_is_rejected() {
        // reading a value written by T and a value overwritten by T means
        // the point must be both >= T and < T: impossible.
        let mut h = WriteHistory::new();
        h.record(x(0), v(t(1, 0))); // overwrites x0's initial value
        h.record(x(1), v(t(1, 0))); // same txn writes x1
        let val = SerializabilityValidator::new(&h);
        let torn = [
            ReadRecord::new(x(0), ItemValue::initial()),
            ReadRecord::new(x(1), v(t(1, 0))),
        ];
        assert!(!val.is_consistent(&torn));
    }
}
