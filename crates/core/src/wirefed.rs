//! A decorator that forces a protocol's control input through the wire.
//!
//! [`WireFed`] wraps any [`ReadOnlyProtocol`] and intercepts
//! [`ReadOnlyProtocol::on_control`]: the in-memory [`ControlInfo`] is
//! encoded as a framed control segment, pushed through a
//! [`WireFeed`] byte buffer, decoded
//! back, and only the *decoded* report reaches the inner protocol — the
//! client sees exactly what a socket-fed client would see. Every other
//! trait method delegates untouched, and
//! [`ReadOnlyProtocol::debug_snapshot`] delegates to the inner protocol,
//! so a wire-fed run is byte-identical to a struct-fed run in the model
//! checker's state hashes *iff* the codec is faithful. Any encode/decode
//! divergence surfaces as a hash mismatch (or, in debug builds,
//! immediately as a failed equivalence assertion here).
//!
//! This is the same transparency contract as
//! [`Instrumented`](crate::instrument::Instrumented); the two decorators
//! compose in either order.

// The byte path itself (framing and field decode) lives in
// `bpush_broadcast::feed`, which carries the `sans_io`/`hot_path` lint
// contracts. This file deliberately does NOT declare `sans_io`: the
// call-graph lint resolves `self.inner.<method>(…)` to every
// `ReadOnlyProtocol` impl in scope, so the marker would extend L12's
// panic-freedom contract through the decorator into every concrete
// protocol — a contract those impls do not carry. The decorator inherits
// whatever contract the protocol it wraps has.

use bpush_broadcast::feed::{
    decode_control_payload, encode_control_segment, SegmentKind, WireFeed,
};
use bpush_broadcast::wire::WireParams;
use bpush_broadcast::ControlInfo;
use bpush_types::{Cycle, ItemId, QueryId};

use crate::instrument::ProtocolStats;
use crate::protocol::{CacheMode, ReadCandidate, ReadDirective, ReadOnlyProtocol, ReadOutcome};

/// Wraps a protocol so its control input takes the wire path.
///
/// # Example
/// ```
/// use bpush_broadcast::wire::WireParams;
/// use bpush_broadcast::ControlInfo;
/// use bpush_core::wirefed::WireFed;
/// use bpush_core::{Method, ReadOnlyProtocol};
/// use bpush_types::Cycle;
///
/// let mut plain = Method::Sgt.build_protocol();
/// let mut wired = WireFed::new(Method::Sgt.build_protocol(), WireParams::derive(100, 4, 8, 8));
/// let ctrl = ControlInfo::empty(Cycle::new(1));
/// plain.on_control(&ctrl);
/// wired.on_control(&ctrl);
/// assert_eq!(plain.debug_snapshot(), wired.debug_snapshot());
/// ```
#[derive(Debug)]
pub struct WireFed {
    inner: Box<dyn ReadOnlyProtocol>,
    params: WireParams,
    feed: WireFeed,
}

impl WireFed {
    /// Wraps `inner`; `params` must give every field of the deployment's
    /// control reports a wide-enough representation (see
    /// [`WireParams::derive`]).
    pub fn new(inner: Box<dyn ReadOnlyProtocol>, params: WireParams) -> Self {
        WireFed {
            inner,
            params,
            feed: WireFeed::new(),
        }
    }

    /// The wire widths in use.
    pub fn params(&self) -> WireParams {
        self.params
    }

    /// Unwraps the inner protocol.
    pub fn into_inner(self) -> Box<dyn ReadOnlyProtocol> {
        self.inner
    }

    /// Runs `ctrl` through encode → framed bytes → decode and returns
    /// what a wire-fed client hears.
    ///
    /// # Panics
    /// Panics if the roundtrip fails or (in debug builds) decodes to a
    /// report that differs from the original: both mean the codec has a
    /// divergence bug, which this decorator exists to surface.
    fn roundtrip(&mut self, ctrl: &ControlInfo) -> ControlInfo {
        let bytes = encode_control_segment(ctrl, self.params);
        self.feed.push(&bytes);
        let seg = self
            .feed
            .pop()
            .expect("control segment kind must frame") // lint: allow(panic) — divergence detector by design
            .expect("control segment must arrive whole"); // lint: allow(panic) — divergence detector by design
        assert_eq!(seg.kind, SegmentKind::Control);
        assert_eq!(seg.cycle, ctrl.cycle());
        let decoded = decode_control_payload(seg.payload, self.params, seg.cycle)
            .expect("a wire-encoded control report must decode"); // lint: allow(panic) — divergence detector by design
        debug_assert_eq!(&decoded, ctrl, "wire roundtrip changed the control report");
        decoded
    }
}

impl ReadOnlyProtocol for WireFed {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn cache_mode(&self) -> CacheMode {
        self.inner.cache_mode()
    }

    fn on_control(&mut self, ctrl: &ControlInfo) {
        let decoded = self.roundtrip(ctrl);
        self.inner.on_control(&decoded);
    }

    fn on_missed_cycle(&mut self, cycle: Cycle) {
        self.inner.on_missed_cycle(cycle);
    }

    fn begin_query(&mut self, q: QueryId, now: Cycle) {
        self.inner.begin_query(q, now);
    }

    fn read_directive(&self, q: QueryId, item: ItemId, now: Cycle) -> ReadDirective {
        self.inner.read_directive(q, item, now)
    }

    fn apply_read(
        &mut self,
        q: QueryId,
        item: ItemId,
        candidate: &ReadCandidate,
        now: Cycle,
    ) -> ReadOutcome {
        self.inner.apply_read(q, item, candidate, now)
    }

    fn finish_query(&mut self, q: QueryId) {
        self.inner.finish_query(q)
    }

    fn space_metrics(&self) -> Option<(usize, usize)> {
        self.inner.space_metrics()
    }

    fn protocol_stats(&self) -> Option<ProtocolStats> {
        self.inner.protocol_stats()
    }

    /// Delegates to the inner protocol: feeding bytes instead of structs
    /// must not perturb the hashed state, and with a faithful codec it
    /// does not.
    fn debug_snapshot(&self) -> String {
        self.inner.debug_snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conformance;
    use crate::instrument::Instrumented;
    use crate::Method;
    use bpush_broadcast::{AugmentedReport, InvalidationReport};
    use bpush_sgraph::GraphDiff;
    use bpush_types::{Granularity, ItemValue, TxnId};

    fn params() -> WireParams {
        WireParams::derive(1000, 8, 32, 16)
    }

    fn sgt_control(cycle: u64) -> ControlInfo {
        let c = Cycle::new(cycle);
        let prev = c.prev();
        let inv = InvalidationReport::with_dated(
            c,
            4,
            [(ItemId::new(3), prev), (ItemId::new(9), c)],
            Granularity::Item,
            4,
        );
        let aug = AugmentedReport::new(prev, [(ItemId::new(3), TxnId::new(prev, 0))]);
        let diff = GraphDiff::new(prev, vec![TxnId::new(prev, 0)], vec![]);
        ControlInfo::new(c, inv, Some(aug), Some(diff))
    }

    #[test]
    fn wire_fed_protocols_still_conform() {
        for method in Method::ALL {
            let violations =
                conformance::check(&|| Box::new(WireFed::new(method.build_protocol(), params())));
            assert!(violations.is_empty(), "{method}: {violations:?}");
        }
    }

    #[test]
    fn wire_feeding_does_not_perturb_snapshots() {
        for method in Method::ALL {
            let mut plain = method.build_protocol();
            let mut wired = WireFed::new(method.build_protocol(), params());
            let q = QueryId::new(0);
            for p in [&mut *plain, &mut wired as &mut dyn ReadOnlyProtocol] {
                p.on_control(&sgt_control(1));
                p.begin_query(q, Cycle::new(1));
                p.on_control(&sgt_control(2));
            }
            assert_eq!(
                plain.debug_snapshot(),
                wired.debug_snapshot(),
                "{method}: the wire must not change the hashed state"
            );
        }
    }

    #[test]
    fn composes_with_instrumentation_in_either_order() {
        let a = Instrumented::new(Box::new(WireFed::new(
            Method::Sgt.build_protocol(),
            params(),
        )));
        let b = WireFed::new(
            Box::new(Instrumented::new(Method::Sgt.build_protocol())),
            params(),
        );
        for mut p in [
            Box::new(a) as Box<dyn ReadOnlyProtocol>,
            Box::new(b) as Box<dyn ReadOnlyProtocol>,
        ] {
            p.on_control(&sgt_control(1));
            let q = QueryId::new(0);
            p.begin_query(q, Cycle::new(1));
            assert!(matches!(
                p.read_directive(q, ItemId::new(1), Cycle::new(1)),
                ReadDirective::Read(_)
            ));
            let cand = ReadCandidate {
                value: ItemValue::initial(),
                last_writer_tag: None,
                valid_from: Cycle::ZERO,
                valid_until: None,
                source: crate::protocol::Source::BroadcastCurrent,
            };
            assert_eq!(
                p.apply_read(q, ItemId::new(1), &cand, Cycle::new(1)),
                ReadOutcome::Accepted
            );
            p.finish_query(q);
            let stats = p.protocol_stats().expect("instrumented");
            assert_eq!(stats.controls, 1);
            assert_eq!(stats.accepts, 1);
        }
    }

    #[test]
    fn delegates_everything_else() {
        let mut p = WireFed::new(Method::MultiversionCaching.build_protocol(), params());
        assert_eq!(p.name(), "mv-caching");
        assert_eq!(p.cache_mode(), CacheMode::Multiversion);
        p.on_missed_cycle(Cycle::new(2));
        assert_eq!(
            p.params().key_bits,
            WireParams::derive(1000, 8, 32, 16).key_bits
        );
        assert_eq!(p.into_inner().cache_mode(), CacheMode::Multiversion);
    }
}
