//! A conformance battery for [`ReadOnlyProtocol`] implementations.
//!
//! Downstream implementations of the trait (a new processing method, an
//! instrumented wrapper, a port) can run [`check`] against a factory for
//! their protocol to verify the contract every client runtime relies on:
//!
//! 1. query lifecycle discipline (begin/finish, no id reuse tolerated),
//! 2. doomed queries stay doomed and reject further reads,
//! 3. accepted reads are recorded (a later directive still succeeds),
//! 4. safety against torn reads: a protocol must never accept a read
//!    that provably violates its own constraint,
//! 5. control-stream tolerance: empty reports and idle cycles are
//!    harmless.
//!
//! The battery is *necessarily* partial — full consistency is checked by
//! the simulation validators — but it catches contract violations early
//! and documents the expected call patterns executable-y.

use bpush_broadcast::{ControlInfo, InvalidationReport};
use bpush_types::{Cycle, Granularity, ItemId, ItemValue, QueryId, TxnId};

use crate::protocol::{ReadCandidate, ReadDirective, ReadOnlyProtocol, ReadOutcome, Source};

/// A single conformance failure: which rule broke and how.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Stable identifier of the violated rule.
    pub rule: &'static str,
    /// Human-readable detail.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.rule, self.detail)
    }
}

fn empty_ctrl(cycle: u64) -> ControlInfo {
    ControlInfo::empty(Cycle::new(cycle))
}

fn report_ctrl(cycle: u64, items: &[u32]) -> ControlInfo {
    let c = Cycle::new(cycle);
    ControlInfo::new(
        c,
        InvalidationReport::new(
            c,
            1,
            items.iter().map(|&i| ItemId::new(i)),
            Granularity::Item,
            1,
        ),
        None,
        None,
    )
}

fn current_candidate(version_cycle: Option<u64>) -> ReadCandidate {
    let value = match version_cycle {
        None => ItemValue::initial(),
        Some(c) => ItemValue::written_by(TxnId::new(Cycle::new(c), 0)),
    };
    ReadCandidate {
        value,
        last_writer_tag: value.writer(),
        valid_from: value.version(),
        valid_until: None,
        source: Source::BroadcastCurrent,
    }
}

/// Runs the battery against fresh protocol instances from `factory`.
/// Returns every violation found (empty = conformant).
pub fn check(factory: &dyn Fn() -> Box<dyn ReadOnlyProtocol>) -> Vec<Violation> {
    let mut violations = Vec::new();
    let mut fail = |rule: &'static str, detail: String| {
        violations.push(Violation { rule, detail });
    };

    // 1. Lifecycle: a fresh query gets a directive; finish releases it.
    {
        let mut p = factory();
        p.on_control(&empty_ctrl(0));
        let q = QueryId::new(0);
        p.begin_query(q, Cycle::new(0));
        match p.read_directive(q, ItemId::new(1), Cycle::new(0)) {
            ReadDirective::Read(c) => {
                if c.state > Cycle::new(0) {
                    fail(
                        "lifecycle/initial-state",
                        format!("initial constraint targets future state {}", c.state),
                    );
                }
            }
            ReadDirective::Doom(r) => {
                fail("lifecycle/fresh-doomed", format!("fresh query doomed: {r}"));
            }
        }
        p.finish_query(q);
        // a new query id works after finishing the old one
        p.begin_query(QueryId::new(1), Cycle::new(0));
        p.finish_query(QueryId::new(1));
    }

    // 2. Accepted reads are recorded and the query stays usable.
    {
        let mut p = factory();
        p.on_control(&empty_ctrl(0));
        let q = QueryId::new(0);
        p.begin_query(q, Cycle::new(0));
        match p.apply_read(q, ItemId::new(1), &current_candidate(None), Cycle::new(0)) {
            ReadOutcome::Accepted => {
                if let ReadDirective::Doom(r) = p.read_directive(q, ItemId::new(2), Cycle::new(0)) {
                    fail(
                        "reads/accept-then-doom",
                        format!("query doomed right after an accepted read: {r}"),
                    );
                }
            }
            ReadOutcome::Rejected(r) => fail(
                "reads/initial-rejected",
                format!("read of an initial value rejected on a fresh query: {r}"),
            ),
        }
        p.finish_query(q);
    }

    // 3. A candidate that violates the constraint must not be accepted.
    {
        let mut p = factory();
        p.on_control(&empty_ctrl(0));
        let q = QueryId::new(0);
        p.begin_query(q, Cycle::new(0));
        if let ReadDirective::Read(c) = p.read_directive(q, ItemId::new(1), Cycle::new(0)) {
            // a value that only becomes current far in the future
            let bogus = ReadCandidate {
                value: ItemValue::written_by(TxnId::new(Cycle::new(99), 0)),
                last_writer_tag: Some(TxnId::new(Cycle::new(99), 0)),
                valid_from: Cycle::new(100),
                valid_until: None,
                source: Source::BroadcastCurrent,
            };
            if !bogus.current_at(c.state) {
                if let ReadOutcome::Accepted =
                    p.apply_read(q, ItemId::new(1), &bogus, Cycle::new(0))
                {
                    fail(
                        "safety/future-value-accepted",
                        "accepted a value not current at the constrained state".to_owned(),
                    );
                }
            }
        }
        p.finish_query(q);
    }

    // 4. Doomed queries stay doomed.
    {
        let mut p = factory();
        p.on_control(&empty_ctrl(0));
        let q = QueryId::new(0);
        p.begin_query(q, Cycle::new(0));
        let _ = p.apply_read(q, ItemId::new(1), &current_candidate(None), Cycle::new(0));
        // hammer the query with invalidations of everything it read, plus
        // a missed cycle — methods differ in whether this dooms it, but
        // once Doom is reported it must be sticky
        p.on_control(&report_ctrl(1, &[1]));
        p.on_missed_cycle(Cycle::new(2));
        p.on_control(&report_ctrl(3, &[1]));
        if let ReadDirective::Doom(first) = p.read_directive(q, ItemId::new(2), Cycle::new(3)) {
            match p.read_directive(q, ItemId::new(2), Cycle::new(3)) {
                ReadDirective::Doom(second) => {
                    if first != second {
                        fail(
                            "doom/unstable-reason",
                            format!("doom reason changed: {first} then {second}"),
                        );
                    }
                }
                ReadDirective::Read(_) => {
                    fail("doom/undoomed", "doomed query came back to life".to_owned());
                }
            }
            if let ReadOutcome::Accepted = p.apply_read(
                q,
                ItemId::new(2),
                &current_candidate(Some(2)),
                Cycle::new(3),
            ) {
                fail(
                    "doom/accepts-reads",
                    "doomed query accepted a further read".to_owned(),
                );
            }
        }
        p.finish_query(q);
    }

    // 5. Idle control streams are harmless.
    {
        let mut p = factory();
        for n in 0..32 {
            p.on_control(&empty_ctrl(n));
        }
        let q = QueryId::new(0);
        p.begin_query(q, Cycle::new(32));
        if let ReadDirective::Doom(r) = p.read_directive(q, ItemId::new(0), Cycle::new(32)) {
            fail(
                "control/idle-dooms",
                format!("query doomed by an idle control stream: {r}"),
            );
        }
        p.finish_query(q);
    }

    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Method;

    #[test]
    fn all_shipped_methods_conform() {
        for method in Method::ALL {
            let violations = check(&|| method.build_protocol());
            assert!(
                violations.is_empty(),
                "{method} violates the protocol contract: {violations:?}"
            );
        }
        // including the disconnection-enhanced SGT variant
        let violations = check(&|| Method::SgtVersionedItems.build_protocol());
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn a_broken_protocol_is_caught() {
        /// Accepts everything, forever — flagrantly violates rule 3.
        #[derive(Debug)]
        struct YesMan;
        impl ReadOnlyProtocol for YesMan {
            fn name(&self) -> &'static str {
                "yes-man"
            }
            fn cache_mode(&self) -> crate::CacheMode {
                crate::CacheMode::None
            }
            fn on_control(&mut self, _: &ControlInfo) {}
            fn on_missed_cycle(&mut self, _: Cycle) {}
            fn begin_query(&mut self, _: QueryId, _: Cycle) {}
            fn read_directive(&self, _: QueryId, _: ItemId, now: Cycle) -> ReadDirective {
                ReadDirective::Read(crate::ReadConstraint {
                    state: now,
                    cache_only: false,
                })
            }
            fn apply_read(
                &mut self,
                _: QueryId,
                _: ItemId,
                _: &ReadCandidate,
                _: Cycle,
            ) -> ReadOutcome {
                ReadOutcome::Accepted
            }
            fn finish_query(&mut self, _: QueryId) {}
        }
        let violations = check(&|| Box::new(YesMan) as Box<dyn ReadOnlyProtocol>);
        assert!(
            violations
                .iter()
                .any(|v| v.rule == "safety/future-value-accepted"),
            "the yes-man must be caught: {violations:?}"
        );
        assert!(violations[0].to_string().contains('['));
    }
}
