//! The named method configurations evaluated in §5.

use std::fmt;

use bpush_obs::{CoverageRule, MonitorPolicy};
use bpush_server::ServerOptions;
use bpush_types::config::MultiversionLayout;

use crate::invalidation::InvalidationOnly;
use crate::multiversion::MultiversionBroadcast;
use crate::mvcache::MultiversionCaching;
use crate::protocol::{CacheMode, ReadOnlyProtocol};
use crate::sgt::{Sgt, SgtConfig};

/// The processing-method configurations the paper's evaluation compares
/// (the curves of Figures 5, 6 and 8 and the columns of Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
// bpush-lint: protocol_enum — the paper’s method matrix; every handler must name each
pub enum Method {
    /// §3.1 without a client cache.
    InvalidationOnly,
    /// §3.1 + §4.1 plain coherent cache.
    InvalidationCache,
    /// §4.1 invalidation-only with versioned cache (Theorem 4).
    InvalidationVersionedCache,
    /// §3.2 multiversion broadcast (all transactions with span ≤ V
    /// accepted).
    MultiversionBroadcast,
    /// §3.3 SGT without a cache.
    Sgt,
    /// §3.3 SGT reading through the coherent cache.
    SgtCache,
    /// §4.2 multiversion caching (Theorem 5).
    MultiversionCaching,
    /// §3.3 SGT with the §5.2.2 disconnection enhancement (per-item
    /// version numbers). Not part of [`Method::ALL`]; used by the
    /// disconnection experiments.
    SgtVersionedItems,
}

impl Method {
    /// All methods, in the paper's comparison order.
    pub const ALL: [Method; 7] = [
        Method::InvalidationOnly,
        Method::InvalidationCache,
        Method::InvalidationVersionedCache,
        Method::MultiversionBroadcast,
        Method::Sgt,
        Method::SgtCache,
        Method::MultiversionCaching,
    ];

    /// A short stable identifier (matches the protocol's
    /// [`ReadOnlyProtocol::name`] plus cache qualifiers).
    pub fn name(self) -> &'static str {
        match self {
            Method::InvalidationOnly => "inv-only",
            Method::InvalidationCache => "inv+cache",
            Method::InvalidationVersionedCache => "inv+vcache",
            Method::MultiversionBroadcast => "multiversion",
            Method::Sgt => "sgt",
            Method::SgtCache => "sgt+cache",
            Method::MultiversionCaching => "mv-caching",
            Method::SgtVersionedItems => "sgt+versions",
        }
    }

    /// Builds a fresh client-side protocol instance for one client.
    pub fn build_protocol(self) -> Box<dyn ReadOnlyProtocol> {
        match self {
            Method::InvalidationOnly | Method::InvalidationCache => {
                Box::new(InvalidationOnly::new())
            }
            Method::InvalidationVersionedCache => {
                Box::new(InvalidationOnly::with_versioned_cache())
            }
            Method::MultiversionBroadcast => Box::new(MultiversionBroadcast::new()),
            Method::Sgt => Box::new(Sgt::new(SgtConfig::default())),
            Method::SgtCache => Box::new(Sgt::new(SgtConfig {
                use_cache: true,
                ..SgtConfig::default()
            })),
            Method::MultiversionCaching => Box::new(MultiversionCaching::new()),
            Method::SgtVersionedItems => Box::new(Sgt::new(SgtConfig {
                versioned_items: true,
                ..SgtConfig::default()
            })),
        }
    }

    /// Whether the client runs a cache under this method.
    pub fn uses_cache(self) -> bool {
        !matches!(
            self,
            Method::InvalidationOnly
                | Method::MultiversionBroadcast
                | Method::Sgt
                | Method::SgtVersionedItems
        )
    }

    /// The cache organization the client must run.
    pub fn cache_mode(self) -> CacheMode {
        match self {
            Method::InvalidationOnly
            | Method::MultiversionBroadcast
            | Method::Sgt
            | Method::SgtVersionedItems => CacheMode::None,
            Method::InvalidationCache | Method::SgtCache => CacheMode::Plain,
            Method::InvalidationVersionedCache => CacheMode::Versioned,
            Method::MultiversionCaching => CacheMode::Multiversion,
        }
    }

    /// The invariant family and gap rule an online monitor must check
    /// this method against (the consistency criterion each method
    /// guarantees, per the §3/§4 correctness arguments).
    pub fn monitor_policy(self) -> (MonitorPolicy, CoverageRule) {
        match self {
            // §3.1: committed readsets are current as of the last clean
            // report; uncovered gaps must doom (window rule, §5.2.2).
            Method::InvalidationOnly | Method::InvalidationCache => {
                (MonitorPolicy::Current, CoverageRule::WindowGap)
            }
            // §4.1/§3.2: the readset need only share one database state;
            // gaps pin the query instead of dooming it.
            Method::InvalidationVersionedCache
            | Method::MultiversionBroadcast
            | Method::MultiversionCaching => (MonitorPolicy::Snapshot, CoverageRule::Ignore),
            // §3.3: the serialization graph stays acyclic; plain SGT
            // cannot tolerate any missed cycle.
            Method::Sgt | Method::SgtCache => (MonitorPolicy::Graph, CoverageRule::StrictGap),
            // §5.2.2: per-item versions let SGT survive disconnections.
            Method::SgtVersionedItems => (MonitorPolicy::Graph, CoverageRule::Ignore),
        }
    }

    /// The server-side support the method needs, given the multiversion
    /// layout to use when applicable.
    pub fn server_options(self, layout: MultiversionLayout) -> ServerOptions {
        match self {
            Method::MultiversionBroadcast => ServerOptions::multiversion(layout),
            Method::Sgt | Method::SgtCache | Method::SgtVersionedItems => ServerOptions::sgt(),
            Method::InvalidationOnly
            | Method::InvalidationCache
            | Method::InvalidationVersionedCache
            | Method::MultiversionCaching => ServerOptions::plain(),
        }
    }
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpush_server::BroadcastMode;

    #[test]
    fn all_methods_build_protocols() {
        for m in Method::ALL {
            let p = m.build_protocol();
            assert!(!p.name().is_empty());
            assert_eq!(m.to_string(), m.name());
        }
    }

    #[test]
    fn names_are_unique() {
        let names: std::collections::HashSet<_> = Method::ALL.iter().map(|m| m.name()).collect();
        assert_eq!(names.len(), Method::ALL.len());
    }

    /// Pins `server_options` for every method, including the
    /// non-comparison `SgtVersionedItems`: the L13 rewrite from a
    /// wildcard arm to named variants must not move any method's
    /// server-side requirements.
    #[test]
    fn server_options_pinned_for_every_method() {
        let layout = MultiversionLayout::Overflow;
        for m in Method::ALL.into_iter().chain([Method::SgtVersionedItems]) {
            let opts = m.server_options(layout);
            let (want_mode, want_sgt) = match m {
                Method::MultiversionBroadcast => (BroadcastMode::Multiversion(layout), false),
                Method::Sgt | Method::SgtCache | Method::SgtVersionedItems => {
                    (BroadcastMode::Plain, true)
                }
                Method::InvalidationOnly
                | Method::InvalidationCache
                | Method::InvalidationVersionedCache
                | Method::MultiversionCaching => (BroadcastMode::Plain, false),
            };
            assert_eq!(opts.mode, want_mode, "{m}");
            assert_eq!(opts.sgt_info, want_sgt, "{m}");
        }
    }

    #[test]
    fn server_requirements() {
        let layout = MultiversionLayout::Overflow;
        assert_eq!(
            Method::MultiversionBroadcast.server_options(layout).mode,
            BroadcastMode::Multiversion(layout)
        );
        assert!(Method::Sgt.server_options(layout).sgt_info);
        assert!(Method::SgtCache.server_options(layout).sgt_info);
        assert_eq!(
            Method::InvalidationOnly.server_options(layout).mode,
            BroadcastMode::Plain
        );
        assert!(!Method::MultiversionCaching.server_options(layout).sgt_info);
    }

    /// Pins the invariant family per method: the differential oracle
    /// (mc ground truth vs online monitors) depends on this mapping.
    #[test]
    fn monitor_policies_pinned_for_every_method() {
        for m in Method::ALL.into_iter().chain([Method::SgtVersionedItems]) {
            let (policy, coverage) = m.monitor_policy();
            let want = match m {
                Method::InvalidationOnly | Method::InvalidationCache => {
                    (MonitorPolicy::Current, CoverageRule::WindowGap)
                }
                Method::InvalidationVersionedCache
                | Method::MultiversionBroadcast
                | Method::MultiversionCaching => (MonitorPolicy::Snapshot, CoverageRule::Ignore),
                Method::Sgt | Method::SgtCache => (MonitorPolicy::Graph, CoverageRule::StrictGap),
                Method::SgtVersionedItems => (MonitorPolicy::Graph, CoverageRule::Ignore),
            };
            assert_eq!((policy, coverage), want, "{m}");
        }
    }

    #[test]
    fn cache_modes_match_usage() {
        for m in Method::ALL {
            assert_eq!(m.uses_cache(), m.cache_mode() != CacheMode::None, "{m}");
        }
        assert_eq!(
            Method::MultiversionCaching.cache_mode(),
            CacheMode::Multiversion
        );
        assert_eq!(
            Method::InvalidationVersionedCache.cache_mode(),
            CacheMode::Versioned
        );
    }
}
