//! The protocol abstraction shared by all processing methods.

// bpush-lint: sans_io — protocol core: the processing-method vocabulary is pure data, no clocks/threads/files/sockets
use std::fmt;

use bpush_broadcast::ControlInfo;
use bpush_types::{Cycle, ItemId, ItemValue, QueryId, TxnId};

// The abort-reason taxonomy lives in `bpush-types` (it is a shared
// dimension for metrics and trace payloads); re-exported here because it
// is part of the protocol vocabulary.
pub use bpush_types::AbortReason;

/// Where a read candidate came from; used for latency accounting and for
/// `cache_only` constraints.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
// bpush-lint: protocol_enum — the read-path data source a client answer came from
pub enum Source {
    /// A coherent (current) cache entry.
    CacheCurrent,
    /// An old-version cache entry (multiversion caching, §4.2) or a
    /// stale-but-tagged entry (versioned cache, §4.1).
    CacheOld,
    /// The current version from the data segment of the broadcast.
    BroadcastCurrent,
    /// An old version from the broadcast (overflow buckets or clustered
    /// chains, §3.2).
    BroadcastOld,
}

impl Source {
    /// Whether the candidate came from the local cache.
    pub const fn is_cache(self) -> bool {
        matches!(self, Source::CacheCurrent | Source::CacheOld)
    }
}

/// A concrete value offered to the protocol to satisfy a read.
///
/// `valid_from` / `valid_until` bound the database states at which the
/// value is known to be current: `valid_from` is the value's version (or,
/// for version-less cache entries, the cycle it was fetched — a
/// conservative later bound), and `valid_until` is the state at which it
/// is known superseded (`None` = still current as far as the source
/// knows).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadCandidate {
    /// The committed value.
    pub value: ItemValue,
    /// The last-writer tag transmitted with the item (SGT mode), if any.
    pub last_writer_tag: Option<TxnId>,
    /// Earliest state at which the value is known current.
    pub valid_from: Cycle,
    /// Exclusive state bound at which the value is known superseded.
    pub valid_until: Option<Cycle>,
    /// Provenance.
    pub source: Source,
}

impl ReadCandidate {
    /// A candidate for the current version taken straight off the
    /// broadcast data segment at `cycle`.
    pub fn from_broadcast(record: &bpush_broadcast::ItemRecord) -> Self {
        ReadCandidate {
            value: record.value(),
            last_writer_tag: record.last_writer(),
            valid_from: record.value().version(),
            valid_until: None,
            source: Source::BroadcastCurrent,
        }
    }

    /// Whether this value is (known) current at database state `state`.
    pub fn current_at(&self, state: Cycle) -> bool {
        self.valid_from <= state && self.valid_until.map_or(true, |w| state < w)
    }
}

/// What a read must satisfy, handed from the protocol to the client
/// runtime before each read.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ReadConstraint {
    /// The query must read the value current at this database state:
    /// the current cycle for current-state methods, the first-read cycle
    /// `c_0` for multiversion broadcast, `u − 1` / `c_u − 1` for the
    /// versioned-cache and multiversion-caching methods.
    pub state: Cycle,
    /// Only the local cache may serve the read (versioned-cache rule of
    /// §4.1 and the strict form of multiversion caching, §4.2).
    pub cache_only: bool,
}

/// The protocol's answer to "may query `q` read item `x` now?".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
// bpush-lint: protocol_enum — per-read client decision driven by the control report
pub enum ReadDirective {
    /// Proceed, fetching a value that satisfies the constraint.
    Read(ReadConstraint),
    /// The query is already doomed; abort it.
    Doom(AbortReason),
}

/// Result of offering a candidate to the protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
// bpush-lint: protocol_enum — terminal read status surfaced to the session layer
pub enum ReadOutcome {
    /// The read is accepted and recorded in the query's readset.
    Accepted,
    /// The read is rejected; the query must abort with this reason.
    Rejected(AbortReason),
}

/// What the client cache must provide for a method to work (§4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
// bpush-lint: protocol_enum — cache discipline negotiated by the method matrix
pub enum CacheMode {
    /// No cache.
    None,
    /// Plain coherent cache (invalidation + autoprefetch).
    Plain,
    /// Entries additionally tagged with their fetch cycle and invalidation
    /// cycle (§4.1).
    Versioned,
    /// Split cache retaining old versions (§4.2).
    Multiversion,
}

/// One replayable interaction with a [`ReadOnlyProtocol`], in the order
/// the trait contract prescribes.
///
/// A recorded `Vec<ProtocolStep>` is a complete deterministic transcript
/// of a client session: feeding it back through
/// [`ReadOnlyProtocol::step`] reproduces the protocol's decisions
/// exactly. This is the replay seam the model checker
/// (`bpush-mc`) serializes its counterexamples against.
#[derive(Debug, Clone)]
// bpush-lint: protocol_enum — client protocol automaton state
pub enum ProtocolStep {
    /// The control information of a cycle the client heard.
    Control(ControlInfo),
    /// A cycle the client missed entirely.
    MissedCycle(Cycle),
    /// Registration of a new query first scheduled at the given cycle.
    BeginQuery(QueryId, Cycle),
    /// One read attempt: the directive is re-derived from the protocol,
    /// and on [`ReadDirective::Read`] the candidate is offered via
    /// [`ReadOnlyProtocol::apply_read`].
    ApplyRead {
        /// The reading query.
        q: QueryId,
        /// The item read.
        item: ItemId,
        /// The candidate value offered to the protocol.
        candidate: ReadCandidate,
        /// The cycle during which the read happens.
        now: Cycle,
    },
    /// Termination (commit or abort) of a query.
    FinishQuery(QueryId),
}

/// A client-side read-only transaction processing method.
///
/// One instance serves one client (all state is client-local — the
/// scalability property of §1); it may interleave any number of queries.
///
/// # Contract
///
/// For each cycle the client hears, [`ReadOnlyProtocol::on_control`] is
/// called exactly once, before any read of that cycle; for each cycle the
/// client misses, [`ReadOnlyProtocol::on_missed_cycle`] is called instead.
/// Each read is a [`ReadOnlyProtocol::read_directive`] /
/// [`ReadOnlyProtocol::apply_read`] pair. A query ends with
/// [`ReadOnlyProtocol::finish_query`], after which its id must not be
/// reused.
pub trait ReadOnlyProtocol: fmt::Debug {
    /// A short stable name for reports ("inv-only", "sgt", ...).
    fn name(&self) -> &'static str;

    /// The cache support this method requires.
    fn cache_mode(&self) -> CacheMode;

    /// Processes the control information at the beginning of a cycle.
    fn on_control(&mut self, ctrl: &ControlInfo);

    /// The client missed `cycle` entirely (disconnection, §5.2.2).
    fn on_missed_cycle(&mut self, cycle: Cycle);

    /// Registers a new query first scheduled at cycle `now`.
    fn begin_query(&mut self, q: QueryId, now: Cycle);

    /// What (if anything) query `q` may read of `item` at cycle `now`.
    fn read_directive(&self, q: QueryId, item: ItemId, now: Cycle) -> ReadDirective;

    /// Offers a candidate satisfying the last directive; the protocol
    /// validates it, records the read, and reports the outcome.
    fn apply_read(
        &mut self,
        q: QueryId,
        item: ItemId,
        candidate: &ReadCandidate,
        now: Cycle,
    ) -> ReadOutcome;

    /// Ends a query (committed or aborted), releasing its state.
    fn finish_query(&mut self, q: QueryId);

    /// Applies one recorded [`ProtocolStep`], dispatching to the
    /// appropriate trait method. Returns the read outcome for
    /// [`ProtocolStep::ApplyRead`] steps (a doomed directive short-cuts
    /// to [`ReadOutcome::Rejected`] without offering the candidate,
    /// mirroring the client runtime) and `None` for all other steps.
    ///
    /// The provided implementation is the replay seam: it must not be
    /// overridden to do anything other than dispatch, or recorded
    /// transcripts stop being faithful.
    fn step(&mut self, step: &ProtocolStep) -> Option<ReadOutcome> {
        match step {
            ProtocolStep::Control(ctrl) => {
                self.on_control(ctrl);
                None
            }
            ProtocolStep::MissedCycle(cycle) => {
                self.on_missed_cycle(*cycle);
                None
            }
            ProtocolStep::BeginQuery(q, now) => {
                self.begin_query(*q, *now);
                None
            }
            ProtocolStep::ApplyRead {
                q,
                item,
                candidate,
                now,
            } => Some(match self.read_directive(*q, *item, *now) {
                ReadDirective::Doom(reason) => ReadOutcome::Rejected(reason),
                ReadDirective::Read(_) => self.apply_read(*q, *item, candidate, *now),
            }),
            ProtocolStep::FinishQuery(q) => {
                self.finish_query(*q);
                None
            }
        }
    }

    /// The current size of whatever validation structure the method
    /// maintains, as `(nodes, edges)` — `None` for methods that keep no
    /// such structure. The SGT method reports its serialization graph;
    /// the simulator samples this every cycle to surface the space
    /// overhead Table 1 calls "considerable".
    fn space_metrics(&self) -> Option<(usize, usize)> {
        None
    }

    /// The operation counters of an instrumentation decorator, when
    /// this protocol is one (see [`crate::instrument::Instrumented`]);
    /// `None` for bare protocols. Lets callers holding a
    /// `Box<dyn ReadOnlyProtocol>` recover the counters without
    /// downcasting.
    fn protocol_stats(&self) -> Option<crate::instrument::ProtocolStats> {
        None
    }

    /// A `Debug`-stable snapshot of the full session state.
    ///
    /// Every protocol in this workspace keeps its state in ordered
    /// (`BTree*`) collections, so the derived `Debug` rendering is a
    /// canonical serialization: two sessions with equal snapshots behave
    /// identically on any future input. The model checker hashes these
    /// snapshots to deduplicate explored states.
    fn debug_snapshot(&self) -> String {
        format!("{self:?}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn candidate_current_at_ranges() {
        let c = ReadCandidate {
            value: ItemValue::initial(),
            last_writer_tag: None,
            valid_from: Cycle::new(3),
            valid_until: Some(Cycle::new(6)),
            source: Source::CacheOld,
        };
        assert!(!c.current_at(Cycle::new(2)));
        assert!(c.current_at(Cycle::new(3)));
        assert!(c.current_at(Cycle::new(5)));
        assert!(!c.current_at(Cycle::new(6)));

        let open = ReadCandidate {
            valid_until: None,
            ..c
        };
        assert!(open.current_at(Cycle::new(100)));
    }

    #[test]
    fn candidate_from_broadcast_record() {
        let t = TxnId::new(Cycle::new(2), 0);
        let rec =
            bpush_broadcast::ItemRecord::new(ItemId::new(1), ItemValue::written_by(t), Some(t));
        let c = ReadCandidate::from_broadcast(&rec);
        assert_eq!(c.valid_from, Cycle::new(3));
        assert_eq!(c.valid_until, None);
        assert_eq!(c.last_writer_tag, Some(t));
        assert_eq!(c.source, Source::BroadcastCurrent);
        assert!(!c.source.is_cache());
        assert!(Source::CacheOld.is_cache());
    }

    #[test]
    fn abort_reason_messages() {
        for r in [
            AbortReason::Invalidated,
            AbortReason::VersionUnavailable,
            AbortReason::CycleDetected,
            AbortReason::Disconnected,
        ] {
            assert!(!r.to_string().is_empty());
        }
    }
}
