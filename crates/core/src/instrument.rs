//! A transparent instrumentation decorator for protocols.
//!
//! [`Instrumented`] wraps any [`ReadOnlyProtocol`] and counts its
//! operations without changing behaviour — the decorator pattern the
//! trait is designed to support (and a worked example for downstream
//! implementors; the conformance battery accepts the wrapped protocol
//! iff it accepts the inner one).

use bpush_broadcast::ControlInfo;
use bpush_types::{Cycle, ItemId, QueryId};

use crate::protocol::{CacheMode, ReadCandidate, ReadDirective, ReadOnlyProtocol, ReadOutcome};

/// Operation counters accumulated by [`Instrumented`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProtocolStats {
    /// Control segments processed.
    pub controls: u64,
    /// Cycles missed.
    pub missed_cycles: u64,
    /// Queries begun.
    pub queries: u64,
    /// Reads accepted.
    pub accepts: u64,
    /// Reads rejected.
    pub rejects: u64,
    /// Directives answered with `Doom`.
    pub dooms: u64,
}

/// Wraps a protocol, transparently counting its operations.
///
/// # Example
/// ```
/// use bpush_core::instrument::Instrumented;
/// use bpush_core::{Method, ReadOnlyProtocol};
/// use bpush_types::{Cycle, QueryId};
///
/// let mut p = Instrumented::new(Method::Sgt.build_protocol());
/// p.begin_query(QueryId::new(0), Cycle::ZERO);
/// p.finish_query(QueryId::new(0));
/// assert_eq!(p.stats().queries, 1);
/// assert_eq!(p.name(), "sgt");
/// ```
#[derive(Debug)]
pub struct Instrumented {
    inner: Box<dyn ReadOnlyProtocol>,
    stats: ProtocolStats,
}

impl Instrumented {
    /// Wraps `inner`.
    pub fn new(inner: Box<dyn ReadOnlyProtocol>) -> Self {
        Instrumented {
            inner,
            stats: ProtocolStats::default(),
        }
    }

    /// The counters so far.
    pub fn stats(&self) -> ProtocolStats {
        self.stats
    }

    /// Unwraps the inner protocol.
    pub fn into_inner(self) -> Box<dyn ReadOnlyProtocol> {
        self.inner
    }
}

impl ReadOnlyProtocol for Instrumented {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn cache_mode(&self) -> CacheMode {
        self.inner.cache_mode()
    }

    fn on_control(&mut self, ctrl: &ControlInfo) {
        self.stats.controls += 1;
        self.inner.on_control(ctrl);
    }

    fn on_missed_cycle(&mut self, cycle: Cycle) {
        self.stats.missed_cycles += 1;
        self.inner.on_missed_cycle(cycle);
    }

    fn begin_query(&mut self, q: QueryId, now: Cycle) {
        self.stats.queries += 1;
        self.inner.begin_query(q, now);
    }

    fn read_directive(&self, q: QueryId, item: ItemId, now: Cycle) -> ReadDirective {
        self.inner.read_directive(q, item, now)
    }

    fn apply_read(
        &mut self,
        q: QueryId,
        item: ItemId,
        candidate: &ReadCandidate,
        now: Cycle,
    ) -> ReadOutcome {
        let outcome = self.inner.apply_read(q, item, candidate, now);
        match outcome {
            ReadOutcome::Accepted => self.stats.accepts += 1,
            ReadOutcome::Rejected(_) => self.stats.rejects += 1,
        }
        outcome
    }

    fn finish_query(&mut self, q: QueryId) {
        self.inner.finish_query(q);
    }

    fn space_metrics(&self) -> Option<(usize, usize)> {
        self.inner.space_metrics()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conformance;
    use crate::protocol::Source;
    use crate::Method;
    use bpush_types::{ItemValue, TxnId};

    #[test]
    fn wrapped_protocols_still_conform() {
        for method in Method::ALL {
            let violations =
                conformance::check(&|| Box::new(Instrumented::new(method.build_protocol())));
            assert!(violations.is_empty(), "{method}: {violations:?}");
        }
    }

    #[test]
    fn counters_track_operations() {
        let mut p = Instrumented::new(Method::InvalidationOnly.build_protocol());
        p.on_control(&ControlInfo::empty(Cycle::ZERO));
        let q = QueryId::new(0);
        p.begin_query(q, Cycle::ZERO);
        let good = ReadCandidate {
            value: ItemValue::initial(),
            last_writer_tag: None,
            valid_from: Cycle::ZERO,
            valid_until: None,
            source: Source::BroadcastCurrent,
        };
        assert_eq!(
            p.apply_read(q, ItemId::new(1), &good, Cycle::ZERO),
            ReadOutcome::Accepted
        );
        let bad = ReadCandidate {
            valid_from: Cycle::new(9),
            value: ItemValue::written_by(TxnId::new(Cycle::new(8), 0)),
            ..good
        };
        assert!(matches!(
            p.apply_read(q, ItemId::new(2), &bad, Cycle::ZERO),
            ReadOutcome::Rejected(_)
        ));
        p.on_missed_cycle(Cycle::new(1));
        p.finish_query(q);
        let stats = p.stats();
        assert_eq!(stats.controls, 1);
        assert_eq!(stats.queries, 1);
        assert_eq!(stats.accepts, 1);
        assert_eq!(stats.rejects, 1);
        assert_eq!(stats.missed_cycles, 1);
        assert_eq!(p.into_inner().name(), "inv-only");
    }

    #[test]
    fn delegates_cache_mode() {
        let p = Instrumented::new(Method::MultiversionCaching.build_protocol());
        assert_eq!(p.cache_mode(), CacheMode::Multiversion);
    }
}
