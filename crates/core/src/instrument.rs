//! A transparent instrumentation decorator for protocols.
//!
//! [`Instrumented`] wraps any [`ReadOnlyProtocol`] and counts its
//! operations without changing behaviour — the decorator pattern the
//! trait is designed to support (and a worked example for downstream
//! implementors; the conformance battery accepts the wrapped protocol
//! iff it accepts the inner one). With [`Instrumented::with_obs`] the
//! decorator additionally streams typed events into a
//! [`bpush_obs::Obs`] sink, giving every protocol tracing for free.
//!
//! Transparency is load-bearing in two ways. First, all counters live
//! in [`Cell`]s so even `&self` calls ([`ReadOnlyProtocol::read_directive`])
//! are counted without changing the trait's receiver types. Second,
//! [`ReadOnlyProtocol::debug_snapshot`] delegates to the *inner*
//! protocol: the model checker hashes snapshots to deduplicate states,
//! and wrapping must not perturb those hashes (counters are
//! observations, not state).

use std::cell::Cell;

use bpush_broadcast::ControlInfo;
use bpush_obs::{Actor, EventKind, Obs};
use bpush_types::{AbortReason, Cycle, ItemId, QueryId};

use crate::protocol::{CacheMode, ReadCandidate, ReadDirective, ReadOnlyProtocol, ReadOutcome};

/// Operation counters accumulated by [`Instrumented`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProtocolStats {
    /// Control segments processed.
    pub controls: u64,
    /// Cycles missed.
    pub missed_cycles: u64,
    /// Queries begun.
    pub queries: u64,
    /// Read directives answered (both `Read` and `Doom`).
    pub directives: u64,
    /// Reads accepted.
    pub accepts: u64,
    /// Reads rejected.
    pub rejects: u64,
    /// Directives answered with `Doom`.
    pub dooms: u64,
    /// Queries finished (committed or aborted).
    pub finishes: u64,
    /// `rejects`, broken down by [`AbortReason::index`].
    pub rejects_by_reason: [u64; AbortReason::COUNT],
    /// `dooms`, broken down by [`AbortReason::index`].
    pub dooms_by_reason: [u64; AbortReason::COUNT],
}

impl ProtocolStats {
    /// Rejections attributed to `reason`.
    pub const fn rejects_for(&self, reason: AbortReason) -> u64 {
        self.rejects_by_reason[reason.index()]
    }

    /// Doomed directives attributed to `reason`.
    pub const fn dooms_for(&self, reason: AbortReason) -> u64 {
        self.dooms_by_reason[reason.index()]
    }

    /// Rejections plus dooms per reason — every way the protocol killed
    /// a read, attributed to its cause, in [`AbortReason::index`] order.
    pub fn aborts_by_reason(&self) -> [u64; AbortReason::COUNT] {
        let mut out = [0; AbortReason::COUNT];
        for (slot, (r, d)) in out.iter_mut().zip(
            self.rejects_by_reason
                .iter()
                .zip(self.dooms_by_reason.iter()),
        ) {
            *slot = r + d;
        }
        out
    }
}

/// Wraps a protocol, transparently counting its operations.
///
/// # Example
/// ```
/// use bpush_core::instrument::Instrumented;
/// use bpush_core::{Method, ReadOnlyProtocol};
/// use bpush_types::{Cycle, QueryId};
///
/// let mut p = Instrumented::new(Method::Sgt.build_protocol());
/// p.begin_query(QueryId::new(0), Cycle::ZERO);
/// p.finish_query(QueryId::new(0));
/// assert_eq!(p.stats().queries, 1);
/// assert_eq!(p.stats().finishes, 1);
/// assert_eq!(p.name(), "sgt");
/// ```
#[derive(Debug)]
pub struct Instrumented {
    inner: Box<dyn ReadOnlyProtocol>,
    stats: Cell<ProtocolStats>,
    obs: Obs,
    actor: Actor,
    last_cycle: Cell<Cycle>,
}

impl Instrumented {
    /// Wraps `inner` with counters only (no event sink).
    pub fn new(inner: Box<dyn ReadOnlyProtocol>) -> Self {
        Instrumented::with_obs(inner, Obs::off(), Actor::Client(0))
    }

    /// Wraps `inner`, counting operations and emitting events into
    /// `obs` attributed to `actor`.
    pub fn with_obs(inner: Box<dyn ReadOnlyProtocol>, obs: Obs, actor: Actor) -> Self {
        Instrumented {
            inner,
            stats: Cell::new(ProtocolStats::default()),
            obs,
            actor,
            last_cycle: Cell::new(Cycle::ZERO),
        }
    }

    /// The counters so far.
    pub fn stats(&self) -> ProtocolStats {
        self.stats.get()
    }

    /// Unwraps the inner protocol.
    pub fn into_inner(self) -> Box<dyn ReadOnlyProtocol> {
        self.inner
    }

    fn update<F: FnOnce(&mut ProtocolStats)>(&self, f: F) {
        let mut s = self.stats.get();
        f(&mut s);
        self.stats.set(s);
    }
}

impl ReadOnlyProtocol for Instrumented {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn cache_mode(&self) -> CacheMode {
        self.inner.cache_mode()
    }

    fn on_control(&mut self, ctrl: &ControlInfo) {
        self.update(|s| s.controls += 1);
        self.last_cycle.set(ctrl.cycle());
        let before = self.inner.space_metrics();
        self.inner.on_control(ctrl);
        self.obs
            .emit(ctrl.cycle(), self.actor, EventKind::ControlProcessed);
        // Typed monitor feed: the per-entry control information the
        // event stream compresses away, in the same order the genuine
        // methods consume it (diff before augmented entries, §3.3).
        if let (Some(mon), Actor::Client(c)) = (self.obs.monitors(), self.actor) {
            let report = ctrl.invalidation();
            mon.control_begin(c, ctrl.cycle(), report.window());
            for (item, wc) in report.dated_items() {
                mon.report_entry(c, item, wc);
            }
            if let Some(diff) = ctrl.graph_diff() {
                mon.graph_diff(c, diff);
            }
            if let Some(aug) = ctrl.augmented() {
                for (item, writer) in aug.entries() {
                    mon.augmented_entry(c, item, writer);
                }
            }
            mon.control_done(c, ctrl.cycle());
        }
        // Surface prunes of the validation structure (SGT's graph) by
        // observing the node/edge counts shrink across the control step.
        if self.obs.is_enabled() {
            if let (Some((n0, e0)), Some((n1, e1))) = (before, self.inner.space_metrics()) {
                if n1 < n0 || e1 < e0 {
                    self.obs.emit(
                        ctrl.cycle(),
                        self.actor,
                        EventKind::GraphPruned {
                            nodes_freed: (n0.saturating_sub(n1)) as u64,
                            edges_freed: (e0.saturating_sub(e1)) as u64,
                        },
                    );
                }
            }
        }
    }

    fn on_missed_cycle(&mut self, cycle: Cycle) {
        self.update(|s| s.missed_cycles += 1);
        self.last_cycle.set(cycle);
        self.inner.on_missed_cycle(cycle);
        self.obs.emit(cycle, self.actor, EventKind::MissedCycle);
    }

    fn begin_query(&mut self, q: QueryId, now: Cycle) {
        self.update(|s| s.queries += 1);
        self.inner.begin_query(q, now);
        self.obs
            .emit(now, self.actor, EventKind::QueryBegun { query: q.number() });
    }

    fn read_directive(&self, q: QueryId, item: ItemId, now: Cycle) -> ReadDirective {
        let directive = self.inner.read_directive(q, item, now);
        self.update(|s| {
            s.directives += 1;
            if let ReadDirective::Doom(reason) = directive {
                s.dooms += 1;
                s.dooms_by_reason[reason.index()] += 1;
            }
        });
        if let ReadDirective::Doom(reason) = directive {
            self.obs
                .emit(now, self.actor, EventKind::ReadDoomed { reason });
        }
        directive
    }

    fn apply_read(
        &mut self,
        q: QueryId,
        item: ItemId,
        candidate: &ReadCandidate,
        now: Cycle,
    ) -> ReadOutcome {
        let outcome = self.inner.apply_read(q, item, candidate, now);
        self.update(|s| match outcome {
            ReadOutcome::Accepted => s.accepts += 1,
            ReadOutcome::Rejected(reason) => {
                s.rejects += 1;
                s.rejects_by_reason[reason.index()] += 1;
            }
        });
        match outcome {
            ReadOutcome::Accepted => {
                self.obs.emit(
                    now,
                    self.actor,
                    EventKind::ReadAccepted { item: item.index() },
                );
                if let (Some(mon), Actor::Client(c)) = (self.obs.monitors(), self.actor) {
                    mon.read_meta(
                        c,
                        q.number(),
                        item,
                        now,
                        candidate.valid_from,
                        candidate.valid_until,
                        candidate
                            .last_writer_tag
                            .or_else(|| candidate.value.writer()),
                    );
                }
            }
            ReadOutcome::Rejected(reason) => self.obs.emit(
                now,
                self.actor,
                EventKind::ReadRejected {
                    item: item.index(),
                    reason,
                },
            ),
        }
        outcome
    }

    fn finish_query(&mut self, q: QueryId) {
        self.update(|s| s.finishes += 1);
        self.inner.finish_query(q);
    }

    fn space_metrics(&self) -> Option<(usize, usize)> {
        self.inner.space_metrics()
    }

    /// Delegates to the inner protocol. The decorator's counters are
    /// observations, not protocol state: the model checker hashes
    /// snapshots to deduplicate explored states, and an instrumented
    /// run must hash identically to a bare one.
    fn debug_snapshot(&self) -> String {
        self.inner.debug_snapshot()
    }

    fn protocol_stats(&self) -> Option<ProtocolStats> {
        Some(self.stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conformance;
    use crate::protocol::Source;
    use crate::Method;
    use bpush_types::{ItemValue, TxnId};

    #[test]
    fn wrapped_protocols_still_conform() {
        for method in Method::ALL {
            let violations =
                conformance::check(&|| Box::new(Instrumented::new(method.build_protocol())));
            assert!(violations.is_empty(), "{method}: {violations:?}");
        }
    }

    #[test]
    fn counters_track_operations() {
        let mut p = Instrumented::new(Method::InvalidationOnly.build_protocol());
        p.on_control(&ControlInfo::empty(Cycle::ZERO));
        let q = QueryId::new(0);
        p.begin_query(q, Cycle::ZERO);
        assert!(matches!(
            p.read_directive(q, ItemId::new(1), Cycle::ZERO),
            ReadDirective::Read(_)
        ));
        let good = ReadCandidate {
            value: ItemValue::initial(),
            last_writer_tag: None,
            valid_from: Cycle::ZERO,
            valid_until: None,
            source: Source::BroadcastCurrent,
        };
        assert_eq!(
            p.apply_read(q, ItemId::new(1), &good, Cycle::ZERO),
            ReadOutcome::Accepted
        );
        let bad = ReadCandidate {
            valid_from: Cycle::new(9),
            value: ItemValue::written_by(TxnId::new(Cycle::new(8), 0)),
            ..good
        };
        let reason = match p.apply_read(q, ItemId::new(2), &bad, Cycle::ZERO) {
            ReadOutcome::Rejected(reason) => reason,
            ReadOutcome::Accepted => panic!("stale candidate must be rejected"),
        };
        p.on_missed_cycle(Cycle::new(1));
        p.finish_query(q);
        let stats = p.stats();
        assert_eq!(stats.controls, 1);
        assert_eq!(stats.queries, 1);
        assert_eq!(stats.directives, 1);
        assert_eq!(stats.accepts, 1);
        assert_eq!(stats.rejects, 1);
        assert_eq!(stats.rejects_for(reason), 1);
        assert_eq!(stats.rejects_by_reason.iter().sum::<u64>(), stats.rejects);
        assert_eq!(stats.missed_cycles, 1);
        assert_eq!(stats.finishes, 1);
        assert_eq!(stats.dooms, 0);
        assert_eq!(p.protocol_stats(), Some(stats));
        assert_eq!(p.into_inner().name(), "inv-only");
    }

    #[test]
    fn doomed_directives_are_counted_by_reason() {
        // After an invalidation hits its readset, inv-only dooms every
        // later directive of the same query.
        let mut p = Instrumented::new(Method::InvalidationOnly.build_protocol());
        let q = QueryId::new(0);
        p.begin_query(q, Cycle::ZERO);
        let good = ReadCandidate {
            value: ItemValue::initial(),
            last_writer_tag: None,
            valid_from: Cycle::ZERO,
            valid_until: None,
            source: Source::BroadcastCurrent,
        };
        assert_eq!(
            p.apply_read(q, ItemId::new(1), &good, Cycle::ZERO),
            ReadOutcome::Accepted
        );
        let report = bpush_broadcast::InvalidationReport::new(
            Cycle::new(1),
            1,
            [ItemId::new(1)],
            bpush_types::Granularity::Item,
            1,
        );
        p.on_control(&ControlInfo::new(Cycle::new(1), report, None, None));
        assert!(matches!(
            p.read_directive(q, ItemId::new(2), Cycle::new(1)),
            ReadDirective::Doom(AbortReason::Invalidated)
        ));
        let stats = p.stats();
        assert_eq!(stats.directives, 1);
        assert_eq!(stats.dooms, 1);
        assert_eq!(stats.dooms_for(AbortReason::Invalidated), 1);
        assert_eq!(
            stats.aborts_by_reason()[AbortReason::Invalidated.index()],
            1
        );
    }

    #[test]
    fn emits_events_into_the_sink() {
        let obs = Obs::recording(256);
        let mut p = Instrumented::with_obs(
            Method::InvalidationOnly.build_protocol(),
            obs.clone(),
            Actor::Client(3),
        );
        p.on_control(&ControlInfo::empty(Cycle::ZERO));
        let q = QueryId::new(0);
        p.begin_query(q, Cycle::ZERO);
        let good = ReadCandidate {
            value: ItemValue::initial(),
            last_writer_tag: None,
            valid_from: Cycle::ZERO,
            valid_until: None,
            source: Source::BroadcastCurrent,
        };
        p.read_directive(q, ItemId::new(1), Cycle::ZERO);
        p.apply_read(q, ItemId::new(1), &good, Cycle::ZERO);
        p.finish_query(q);
        let snap = obs.snapshot().expect("recording");
        assert_eq!(snap.counter("control.processed"), 1);
        assert_eq!(snap.counter("queries.begun"), 1);
        assert_eq!(snap.counter("reads.accepted"), 1);
        assert!(snap.events.iter().all(|e| e.actor == Actor::Client(3)));
    }

    #[test]
    fn monitors_ride_the_obs_handle_and_genuine_runs_pass() {
        use bpush_obs::{MonitorConfig, Monitors};
        for method in [Method::InvalidationOnly, Method::Sgt] {
            let (policy, coverage) = method.monitor_policy();
            let monitors = Monitors::new(MonitorConfig::new(1, policy, coverage));
            let obs = Obs::off().with_monitors(monitors.clone());
            assert!(obs.is_enabled(), "monitors alone enable the sink");
            let mut p =
                Instrumented::with_obs(method.build_protocol(), obs.clone(), Actor::Client(0));
            let q = QueryId::new(0);
            p.on_control(&ControlInfo::empty(Cycle::ZERO));
            p.begin_query(q, Cycle::ZERO);
            let good = ReadCandidate {
                value: ItemValue::initial(),
                last_writer_tag: None,
                valid_from: Cycle::ZERO,
                valid_until: None,
                source: Source::BroadcastCurrent,
            };
            assert_eq!(
                p.apply_read(q, ItemId::new(1), &good, Cycle::ZERO),
                ReadOutcome::Accepted
            );
            // an unrelated invalidation must not trip the monitor
            let report = bpush_broadcast::InvalidationReport::new(
                Cycle::new(1),
                1,
                [ItemId::new(9)],
                bpush_types::Granularity::Item,
                1,
            );
            p.on_control(&ControlInfo::new(Cycle::new(1), report, None, None));
            obs.emit(
                Cycle::new(1),
                Actor::Client(0),
                EventKind::QueryCommitted {
                    query: 0,
                    latency_slots: 4,
                },
            );
            p.finish_query(q);
            let v = monitors.verdict();
            assert!(v.pass(), "{method}: {}", v.render());
            assert_eq!(v.controls, 2, "{method}");
            assert_eq!(v.commits, 1, "{method}");
        }
    }

    #[test]
    fn monitors_catch_a_read_accepted_past_an_invalidation() {
        use bpush_obs::{MonitorConfig, MonitorPolicy, Monitors};
        // Drive the monitor the way a *broken* inv-only would behave:
        // accept a read after a report entry hit the readset.
        let (policy, coverage) = Method::InvalidationOnly.monitor_policy();
        assert_eq!(policy, MonitorPolicy::Current);
        let monitors = Monitors::new(MonitorConfig::new(1, policy, coverage));
        let obs = Obs::off().with_monitors(monitors.clone());
        obs.emit(
            Cycle::ZERO,
            Actor::Client(0),
            EventKind::QueryBegun { query: 0 },
        );
        monitors.read_meta(0, 0, ItemId::new(1), Cycle::ZERO, Cycle::ZERO, None, None);
        monitors.control_begin(0, Cycle::new(1), 1);
        monitors.report_entry(0, ItemId::new(1), Cycle::ZERO);
        monitors.control_done(0, Cycle::new(1));
        // a genuine protocol would doom; the broken one reads on
        monitors.read_meta(0, 0, ItemId::new(2), Cycle::new(1), Cycle::ZERO, None, None);
        let v = monitors.verdict();
        assert!(!v.pass());
        assert_eq!(v.violations[0].item, 1);
    }

    #[test]
    fn instrumentation_does_not_perturb_snapshots() {
        for method in Method::ALL {
            let mut plain = method.build_protocol();
            let mut wrapped = Instrumented::new(method.build_protocol());
            let q = QueryId::new(0);
            for p in [&mut *plain, &mut wrapped as &mut dyn ReadOnlyProtocol] {
                p.on_control(&ControlInfo::empty(Cycle::ZERO));
                p.begin_query(q, Cycle::ZERO);
            }
            assert_eq!(
                plain.debug_snapshot(),
                wrapped.debug_snapshot(),
                "{method}: wrapping must not change the hashed state"
            );
        }
    }

    #[test]
    fn delegates_cache_mode() {
        let p = Instrumented::new(Method::MultiversionCaching.build_protocol());
        assert_eq!(p.cache_mode(), CacheMode::Multiversion);
    }
}
