//! Read-only transaction processing for broadcast push — the primary
//! contribution of *Pitoura & Chrysanthis, ICDCS 1999*.
//!
//! Clients of a broadcast-push server execute read-only transactions
//! ("queries") whose readsets must form a subset of a consistent database
//! state, validated **entirely at the client** from control information on
//! the broadcast — never by contacting the server, which is what makes
//! every method scale independently of the client population.
//!
//! # The methods
//!
//! | Method | Paper | Idea |
//! |---|---|---|
//! | [`InvalidationOnly`] | §3.1 | abort on any invalidated read |
//! | [`InvalidationOnly`] + versioned cache | §4.1, Thm. 4 | continue from old-enough cache entries |
//! | [`MultiversionBroadcast`] | §3.2 | read the snapshot of the first-read cycle |
//! | [`Sgt`] | §3.3 | serialization-graph testing at the client |
//! | [`MultiversionCaching`] | §4.2, Thm. 5 | snapshot of the first-invalidation cycle, old versions from cache |
//!
//! All five implement [`ReadOnlyProtocol`]: a client runtime feeds them
//! the per-cycle [`ControlInfo`](bpush_broadcast::ControlInfo), asks for a
//! [`ReadConstraint`] before each read, offers a [`ReadCandidate`]
//! (from cache or from the broadcast), and the protocol accepts the read
//! or dooms the query.
//!
//! [`validator::SerializabilityValidator`] independently checks every
//! committed readset against the server's ground-truth write history —
//! the executable form of the paper's Theorems 1–5.
//!
//! # Example: invalidation-only in a few lines
//!
//! ```
//! use bpush_core::{InvalidationOnly, ReadDirective, ReadOnlyProtocol};
//! use bpush_broadcast::{ControlInfo, InvalidationReport};
//! use bpush_types::{Cycle, Granularity, ItemId, QueryId};
//!
//! let mut p = InvalidationOnly::new();
//! let q = QueryId::new(0);
//! p.begin_query(q, Cycle::new(3));
//! // at cycle 4, a report invalidates item 7:
//! let report = InvalidationReport::new(
//!     Cycle::new(4), 1, [ItemId::new(7)], Granularity::Item, 1);
//! let ctrl = ControlInfo::new(Cycle::new(4), report, None, None);
//! p.on_control(&ctrl);
//! // the query had not read item 7 yet, so it is still active:
//! assert!(matches!(p.read_directive(q, ItemId::new(7), Cycle::new(4)),
//!                  ReadDirective::Read(_)));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod batch;
pub mod conformance;
pub mod instrument;
mod invalidation;
mod method;
mod multiversion;
mod mvcache;
mod protocol;
mod readset;
mod sgt;
pub mod validator;
pub mod wirefed;

pub use batch::CohortScreen;
pub use invalidation::InvalidationOnly;
pub use method::Method;
pub use multiversion::MultiversionBroadcast;
pub use mvcache::MultiversionCaching;
pub use protocol::{
    AbortReason, CacheMode, ProtocolStep, ReadCandidate, ReadConstraint, ReadDirective,
    ReadOnlyProtocol, ReadOutcome, Source,
};
pub use readset::ReadSet;
pub use sgt::{Sgt, SgtConfig};
