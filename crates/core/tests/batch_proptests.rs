//! Differential property tests for the PR-8 batch validation engine.
//!
//! Two layers, each pinned against its PR-3 per-query counterpart:
//!
//! * [`bpush_core::batch::stale_verdicts`] — the cohort-screened batch
//!   probe must return exactly the per-readset `any_stale` verdicts,
//!   even when the screen carries lingering bits of finished queries.
//! * The protocols themselves — a cohort of queries validated together
//!   inside one protocol instance (sharing its [`CohortScreen`] fast
//!   path) must produce the same directives, outcomes, and
//!   [`AbortReason`] counters as the same queries driven one-per-
//!   instance, where the batch screen degenerates to a single query.

// Integration tests are exempt from the panic-freedom policy
// (mirrors `allow-unwrap-in-tests` in clippy.toml and the `#[cfg(test)]`
// carve-out in `cargo xtask lint`).
#![allow(clippy::unwrap_used)]
use std::collections::BTreeMap;

use proptest::prelude::*;

use bpush_broadcast::{AugmentedReport, ControlInfo, InvalidationReport};
use bpush_core::batch::stale_verdicts;
use bpush_core::{
    CohortScreen, InvalidationOnly, MultiversionCaching, ReadCandidate, ReadDirective,
    ReadOnlyProtocol, ReadOutcome, ReadSet, Sgt, SgtConfig, Source,
};
use bpush_types::{Cycle, Granularity, ItemId, ItemValue, QueryId, TxnId};

/// One random client script: a fixed cohort of queries all begun at
/// cycle 0, each with dated reads and an optional finish cycle, heard
/// against a shared stream of (possibly missed) invalidation reports.
#[derive(Debug, Clone)]
struct Script {
    /// Per query: `(cycle, item)` reads, nondecreasing in cycle.
    reads: Vec<Vec<(u64, u32)>>,
    /// Per query: the cycle at whose start it finishes, if any.
    finish: Vec<Option<u64>>,
    /// Per cycle `1..=CYCLES`: `(heard, updated items)`.
    reports: Vec<(bool, Vec<u32>)>,
}

const CYCLES: u64 = 6;

fn script() -> impl Strategy<Value = Script> {
    (
        proptest::collection::vec(
            proptest::collection::vec((0u64..CYCLES, 0u32..40), 0..6).prop_map(|mut v| {
                v.sort_unstable();
                v
            }),
            1..4,
        ),
        // one finish slot per possible query (surplus sliced off below)
        proptest::collection::vec(
            (proptest::bool::ANY, 1u64..CYCLES + 1)
                .prop_map(|(some, c)| if some { Some(c) } else { None }),
            4..5,
        ),
        proptest::collection::vec(
            (
                proptest::bool::weighted(0.85),
                proptest::collection::vec(0u32..40, 0..6),
            ),
            (CYCLES as usize)..(CYCLES as usize + 1),
        ),
    )
        .prop_map(|(reads, finish, reports)| {
            let n = reads.len();
            Script {
                finish: finish[..n].to_vec(),
                reads,
                reports,
            }
        })
}

fn current_candidate() -> ReadCandidate {
    let value = ItemValue::initial();
    ReadCandidate {
        value,
        last_writer_tag: value.writer(),
        valid_from: Cycle::ZERO,
        valid_until: None,
        source: Source::BroadcastCurrent,
    }
}

fn ctrl(cycle: u64, items: &[u32], augmented: bool) -> ControlInfo {
    let c = Cycle::new(cycle);
    let aug = augmented.then(|| {
        let prev = c.checked_sub(1).unwrap_or(Cycle::ZERO);
        AugmentedReport::new(
            prev,
            items.iter().map(|&i| (ItemId::new(i), TxnId::new(prev, 0))),
        )
    });
    ControlInfo::new(
        c,
        InvalidationReport::new(
            c,
            1,
            items.iter().map(|&i| ItemId::new(i)),
            Granularity::Item,
            1,
        ),
        aug,
        None,
    )
}

/// Per-query observable log plus the tally of every abort reason seen
/// in a directive or outcome.
type Observed = (Vec<Vec<String>>, BTreeMap<String, usize>);

/// A protocol-instance factory paired with its name and whether it
/// consumes augmented reports.
type MethodCase = (
    &'static str,
    bool,
    Box<dyn Fn() -> Box<dyn ReadOnlyProtocol>>,
);

/// Drives `queries` (cohort mode: all in one instance; isolated mode:
/// one instance each) through the script, logging every directive and
/// outcome per query, plus one end-of-cycle directive probe so doomed
/// transitions are observed even without a read that cycle.
fn drive(
    factory: &dyn Fn() -> Box<dyn ReadOnlyProtocol>,
    s: &Script,
    augmented: bool,
    cohort: bool,
) -> Observed {
    let n = s.reads.len();
    let mut instances: Vec<Box<dyn ReadOnlyProtocol>> = if cohort {
        vec![factory()]
    } else {
        (0..n).map(|_| factory()).collect()
    };
    let of = |q: usize| if cohort { 0 } else { q };
    let mut logs = vec![Vec::new(); n];
    let mut reasons: BTreeMap<String, usize> = BTreeMap::new();
    let mut active = vec![true; n];
    for q in 0..n {
        instances[of(q)].begin_query(QueryId::new(q as u64), Cycle::ZERO);
    }
    for now in 0..=CYCLES {
        if now > 0 {
            let (heard, items) = &s.reports[(now - 1) as usize];
            for p in &mut instances {
                if *heard {
                    p.on_control(&ctrl(now, items, augmented));
                } else {
                    p.on_missed_cycle(Cycle::new(now));
                }
            }
        }
        for q in 0..n {
            if !active[q] {
                continue;
            }
            let qid = QueryId::new(q as u64);
            for &(rc, item) in &s.reads[q] {
                if rc != now {
                    continue;
                }
                let d = instances[of(q)].read_directive(qid, ItemId::new(item), Cycle::new(now));
                logs[q].push(format!("{now} {item} {d:?}"));
                if let ReadDirective::Doom(r) = d {
                    *reasons.entry(format!("{r:?}")).or_default() += 1;
                    continue;
                }
                let o = instances[of(q)].apply_read(
                    qid,
                    ItemId::new(item),
                    &current_candidate(),
                    Cycle::new(now),
                );
                logs[q].push(format!("{now} {item} {o:?}"));
                if let ReadOutcome::Rejected(r) = o {
                    *reasons.entry(format!("{r:?}")).or_default() += 1;
                }
            }
            // end-of-cycle probe: observe doomed/pinned state transitions
            let d = instances[of(q)].read_directive(qid, ItemId::new(99), Cycle::new(now));
            logs[q].push(format!("{now} probe {d:?}"));
            if let ReadDirective::Doom(r) = d {
                *reasons.entry(format!("{r:?}")).or_default() += 1;
            }
            if s.finish[q] == Some(now) {
                instances[of(q)].finish_query(qid);
                active[q] = false;
            }
        }
    }
    (logs, reasons)
}

proptest! {
    /// The batch `stale_verdicts` pass returns exactly the per-readset
    /// galloping `any_stale` verdicts — including under a screen that
    /// carries lingering bits of already-finished queries.
    #[test]
    fn batch_stale_verdicts_agree_with_per_query(
        sets in proptest::collection::vec(
            (proptest::collection::btree_set(0u32..200, 0..8), 0u64..8),
            1..6,
        ),
        lingering in proptest::collection::btree_set(0u32..200, 0..8),
        report_items in proptest::collection::vec((0u32..200, 1u64..8), 0..10),
    ) {
        let readsets: Vec<(ReadSet, Cycle)> = sets
            .into_iter()
            .map(|(s, c)| (s.into_iter().map(ItemId::new).collect(), Cycle::new(c)))
            .collect();
        let report = InvalidationReport::with_dated(
            Cycle::new(8),
            1,
            report_items.into_iter().map(|(x, c)| (ItemId::new(x), Cycle::new(c))),
            Granularity::Item,
            1,
        );
        // the screen is the union of the live cohort plus bits of a
        // finished query that have not been cleared yet
        let stale: ReadSet = lingering.into_iter().map(ItemId::new).collect();
        let mut screen = CohortScreen::for_readsets(
            readsets.iter().map(|(rs, _)| rs).chain([&stale]),
        );
        let cohort: Vec<(&ReadSet, Cycle)> =
            readsets.iter().map(|(rs, c)| (rs, *c)).collect();
        let mut out = Vec::new();
        stale_verdicts(&report, &screen, &cohort, &mut out);
        let oracle: Vec<bool> = cohort
            .iter()
            .map(|(rs, state)| report.any_stale(rs.as_slice(), *state))
            .collect();
        prop_assert_eq!(&out, &oracle);
        // and with an empty screen over an empty cohort
        screen.clear();
        stale_verdicts(&report, &screen, &[], &mut out);
        prop_assert!(out.is_empty());
    }

    /// Driving a cohort of queries through one protocol instance (the
    /// batch screen active across the cohort) observes exactly the same
    /// directives, outcomes, and abort-reason counters as driving each
    /// query in its own instance.
    #[test]
    fn cohort_validation_matches_isolated_queries(s in script()) {
        let methods: Vec<MethodCase> = vec![
            ("inv-only", false, Box::new(|| Box::new(InvalidationOnly::new()) as _)),
            ("inv-versioned", false, Box::new(|| {
                Box::new(InvalidationOnly::with_versioned_cache()) as _
            })),
            ("mv-caching", false, Box::new(|| Box::new(MultiversionCaching::new()) as _)),
            ("sgt", true, Box::new(|| Box::new(Sgt::new(SgtConfig::default())) as _)),
        ];
        for (name, augmented, factory) in &methods {
            let (cohort_logs, cohort_reasons) = drive(factory, &s, *augmented, true);
            let (iso_logs, iso_reasons) = drive(factory, &s, *augmented, false);
            prop_assert_eq!(&cohort_logs, &iso_logs, "{}: logs diverge", name);
            prop_assert_eq!(
                &cohort_reasons, &iso_reasons,
                "{}: abort-reason counters diverge", name
            );
        }
    }
}
