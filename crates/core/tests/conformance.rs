//! Runs every `ReadOnlyProtocol` implementation through the conformance
//! battery — both raw and wrapped in [`Instrumented`] — and proves the
//! wrapper is behaviorally transparent.
//!
//! This file is also the evidence `cargo xtask lint` (rule
//! `L4/conformance`) scans for: it names each implementing type —
//! `InvalidationOnly`, `MultiversionBroadcast`, `Sgt`,
//! `MultiversionCaching`, `Instrumented`, `WireFed` — next to the
//! battery that exercises it.

// Integration tests are exempt from the panic-freedom policy
// (mirrors `allow-unwrap-in-tests` in clippy.toml and the `#[cfg(test)]`
// carve-out in `cargo xtask lint`).
#![allow(clippy::unwrap_used)]
use bpush_broadcast::wire::WireParams;
use bpush_broadcast::{ControlInfo, InvalidationReport};
use bpush_core::conformance;
use bpush_core::instrument::Instrumented;
use bpush_core::wirefed::WireFed;
use bpush_core::{
    InvalidationOnly, Method, MultiversionBroadcast, MultiversionCaching, ReadCandidate,
    ReadDirective, ReadOnlyProtocol, Sgt, SgtConfig, Source,
};
use bpush_types::{Cycle, Granularity, ItemId, ItemValue, QueryId, TxnId};

/// Asserts the battery finds nothing to complain about.
fn assert_conformant(label: &str, factory: &dyn Fn() -> Box<dyn ReadOnlyProtocol>) {
    let violations = conformance::check(factory);
    assert!(
        violations.is_empty(),
        "{label} failed the conformance battery:\n{}",
        violations
            .iter()
            .map(|v| format!("  {v}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn invalidation_only_conforms() {
    assert_conformant("InvalidationOnly", &|| Box::new(InvalidationOnly::new()));
    assert_conformant("InvalidationOnly (versioned cache)", &|| {
        Box::new(InvalidationOnly::with_versioned_cache())
    });
}

#[test]
fn multiversion_broadcast_conforms() {
    assert_conformant("MultiversionBroadcast", &|| {
        Box::new(MultiversionBroadcast::new())
    });
}

#[test]
fn sgt_conforms() {
    assert_conformant("Sgt", &|| Box::new(Sgt::new(SgtConfig::default())));
    assert_conformant("Sgt (cache)", &|| {
        Box::new(Sgt::new(SgtConfig {
            use_cache: true,
            ..SgtConfig::default()
        }))
    });
}

#[test]
fn multiversion_caching_conforms() {
    assert_conformant("MultiversionCaching", &|| {
        Box::new(MultiversionCaching::new())
    });
}

/// `SgtVersionedItems` is not part of `Method::ALL` (it is the §5.2.2
/// disconnection enhancement of SGT with per-item version numbers), so
/// it needs explicit coverage — raw and wrapped.
#[test]
fn sgt_versioned_items_conforms() {
    let m = Method::SgtVersionedItems;
    assert_conformant(m.name(), &|| m.build_protocol());
    assert_conformant(&format!("Instrumented<{}>", m.name()), &|| {
        Box::new(Instrumented::new(m.build_protocol()))
    });
}

#[test]
fn every_method_conforms() {
    for method in Method::ALL {
        assert_conformant(method.name(), &|| method.build_protocol());
    }
}

/// The battery must be unable to tell an `Instrumented`-wrapped protocol
/// from the raw one, for every method.
#[test]
fn every_method_conforms_under_instrumentation() {
    for method in Method::ALL {
        assert_conformant(&format!("Instrumented<{}>", method.name()), &|| {
            Box::new(Instrumented::new(method.build_protocol()))
        });
    }
}

/// Wire widths generous enough for every id/cycle the battery and the
/// drive script use (item ids < 1000, short cycle spans).
fn wire_params() -> WireParams {
    WireParams::derive(1000, 8, 32, 16)
}

/// Feeding control input through the wire codec must be behaviorally
/// invisible: every method still conforms wrapped in `WireFed`.
#[test]
fn every_method_conforms_wire_fed() {
    for method in Method::ALL {
        assert_conformant(&format!("WireFed<{}>", method.name()), &|| {
            Box::new(WireFed::new(method.build_protocol(), wire_params()))
        });
    }
}

/// Wrapping must compose: two layers of instrumentation still conform.
#[test]
fn double_instrumentation_conforms() {
    for method in Method::ALL {
        assert_conformant(&format!("Instrumented^2<{}>", method.name()), &|| {
            Box::new(Instrumented::new(Box::new(Instrumented::new(
                method.build_protocol(),
            ))))
        });
    }
}

fn report_ctrl(cycle: u64, items: &[u32]) -> ControlInfo {
    let c = Cycle::new(cycle);
    ControlInfo::new(
        c,
        InvalidationReport::new(
            c,
            1,
            items.iter().map(|&i| ItemId::new(i)),
            Granularity::Item,
            1,
        ),
        None,
        None,
    )
}

fn candidate(version_cycle: Option<u64>) -> ReadCandidate {
    let value = match version_cycle {
        None => ItemValue::initial(),
        Some(c) => ItemValue::written_by(TxnId::new(Cycle::new(c), 0)),
    };
    ReadCandidate {
        value,
        last_writer_tag: value.writer(),
        valid_from: value.version(),
        valid_until: None,
        source: Source::BroadcastCurrent,
    }
}

/// Drives a protocol through a fixed script and logs every observable
/// output (name, directives, outcomes) as strings for comparison.
fn drive(p: &mut dyn ReadOnlyProtocol) -> Vec<String> {
    let mut log = vec![p.name().to_string(), format!("{:?}", p.cache_mode())];
    p.on_control(&report_ctrl(0, &[]));
    let q = QueryId::new(0);
    p.begin_query(q, Cycle::new(0));
    let d0 = p.read_directive(q, ItemId::new(1), Cycle::new(0));
    log.push(format!("{d0:?}"));
    let o0 = p.apply_read(q, ItemId::new(1), &candidate(None), Cycle::new(0));
    log.push(format!("{o0:?}"));
    // Next cycle invalidates item 1 (already read) and item 2.
    p.on_control(&report_ctrl(1, &[1, 2]));
    let d1 = p.read_directive(q, ItemId::new(2), Cycle::new(1));
    log.push(format!("{d1:?}"));
    if let ReadDirective::Read(_) = d1 {
        let o1 = p.apply_read(q, ItemId::new(2), &candidate(Some(1)), Cycle::new(1));
        log.push(format!("{o1:?}"));
    }
    p.finish_query(q);
    // A disconnection, then a fresh query to show state was released.
    p.on_missed_cycle(Cycle::new(2));
    p.on_control(&report_ctrl(3, &[]));
    let q2 = QueryId::new(1);
    p.begin_query(q2, Cycle::new(3));
    let d2 = p.read_directive(q2, ItemId::new(5), Cycle::new(3));
    log.push(format!("{d2:?}"));
    p.finish_query(q2);
    log
}

/// For every method, the scripted observable behavior of the raw protocol
/// and of its `Instrumented` wrapper must be identical.
#[test]
fn instrumentation_is_transparent() {
    for method in Method::ALL {
        let mut raw = method.build_protocol();
        let raw_log = drive(raw.as_mut());

        let mut wrapped = Instrumented::new(method.build_protocol());
        let wrapped_log = drive(&mut wrapped);

        assert_eq!(
            raw_log,
            wrapped_log,
            "Instrumented changed observable behavior of {}",
            method.name()
        );
    }
}

/// The wire decorator must be indistinguishable from the raw protocol on
/// the scripted drive (the same transparency bar `Instrumented` clears).
#[test]
fn wire_feeding_is_transparent() {
    for method in Method::ALL {
        let mut raw = method.build_protocol();
        let raw_log = drive(raw.as_mut());

        let mut wired = WireFed::new(method.build_protocol(), wire_params());
        let wired_log = drive(&mut wired);

        assert_eq!(
            raw_log,
            wired_log,
            "WireFed changed observable behavior of {}",
            method.name()
        );
    }
}

/// The wrapper's counters must reflect exactly the calls the script made.
#[test]
fn instrumentation_counts_calls() {
    let mut wrapped = Instrumented::new(Method::InvalidationOnly.build_protocol());
    let log = drive(&mut wrapped);
    let stats = wrapped.stats();
    assert_eq!(stats.controls, 3, "script hears 3 control segments");
    assert_eq!(stats.missed_cycles, 1, "script misses 1 cycle");
    assert_eq!(stats.queries, 2, "script begins 2 queries");
    // Every apply_read lands in accepts or rejects; the script applies at
    // least one and logged each outcome.
    let applies = log
        .iter()
        .filter(|l| l.contains("Accepted") || l.contains("Rejected"))
        .count();
    assert_eq!(
        stats.accepts + stats.rejects,
        applies as u64,
        "accepts + rejects must equal applied reads"
    );
    // The inner protocol survives unwrap.
    let inner = wrapped.into_inner();
    assert_eq!(inner.name(), "inv-only");
}
