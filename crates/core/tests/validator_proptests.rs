//! Property tests for the serializability validator, checked against a
//! brute-force oracle over random serial histories.

// Integration tests are exempt from the panic-freedom policy
// (mirrors `allow-unwrap-in-tests` in clippy.toml and the `#[cfg(test)]`
// carve-out in `cargo xtask lint`).
#![allow(clippy::unwrap_used)]
use proptest::prelude::*;
use std::collections::HashMap;

use bpush_core::validator::{ReadRecord, SerializabilityValidator};
use bpush_server::WriteHistory;
use bpush_types::{Cycle, ItemId, ItemValue, TxnId};

const N_ITEMS: u32 = 6;

/// A random serial history: a sequence of writes `(item, txn position)`.
/// Returns the history plus, per item, the full version chain (initial
/// value first).
fn build_history(writes: &[(u32, u32)]) -> (WriteHistory, HashMap<ItemId, Vec<ItemValue>>) {
    let mut h = WriteHistory::new();
    let mut chains: HashMap<ItemId, Vec<ItemValue>> = (0..N_ITEMS)
        .map(|i| (ItemId::new(i), vec![ItemValue::initial()]))
        .collect();
    for (pos, &(raw, _)) in writes.iter().enumerate() {
        let item = ItemId::new(raw % N_ITEMS);
        // one transaction per write, strictly increasing serial order
        let txn = TxnId::new(Cycle::new(pos as u64), 0);
        let value = ItemValue::written_by(txn);
        h.record(item, value);
        chains.get_mut(&item).expect("known").push(value);
    }
    (h, chains)
}

/// Brute-force oracle: a readset is prefix-consistent iff there is a
/// prefix length `k` of the serial history at which every read value is
/// the latest write (or initial load) among the first `k` writes.
fn oracle_prefix_consistent(
    chains: &HashMap<ItemId, Vec<ItemValue>>,
    total_writes: usize,
    reads: &[ReadRecord],
) -> bool {
    'prefix: for k in 0..=total_writes {
        for r in reads {
            let current = chains[&r.item]
                .iter()
                .rev()
                .find(|v| match v.writer() {
                    None => true,
                    Some(w) => (w.cycle().number() as usize) < k,
                })
                .copied()
                .expect("initial value always qualifies");
            if current != r.value {
                continue 'prefix;
            }
        }
        return true;
    }
    false
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    /// The interval check agrees with the brute-force prefix oracle for
    /// arbitrary histories and arbitrary (possibly torn) readsets.
    #[test]
    fn interval_check_matches_prefix_oracle(
        writes in proptest::collection::vec((0u32..N_ITEMS, 0u32..1), 0..24),
        picks in proptest::collection::vec((0u32..N_ITEMS, 0usize..32), 0..5),
    ) {
        let (h, chains) = build_history(&writes);
        let validator = SerializabilityValidator::new(&h);
        // build a readset by picking, per chosen item, some version index
        let mut reads = Vec::new();
        let mut used = std::collections::HashSet::new();
        for &(raw, vidx) in &picks {
            let item = ItemId::new(raw % N_ITEMS);
            if !used.insert(item) {
                continue;
            }
            let chain = &chains[&item];
            reads.push(ReadRecord::new(item, chain[vidx % chain.len()]));
        }
        let got = validator.check(&reads).is_ok();
        let want = oracle_prefix_consistent(&chains, writes.len(), &reads);
        prop_assert_eq!(got, want, "reads {:?}", reads);
    }

    /// Snapshot readsets (all values as of one prefix point) always pass
    /// both the interval check and the graph check.
    #[test]
    fn snapshots_always_pass(
        writes in proptest::collection::vec((0u32..N_ITEMS, 0u32..1), 0..24),
        point_frac in 0.0f64..1.0,
        subset in proptest::collection::vec(0u32..N_ITEMS, 1..4),
    ) {
        let (h, chains) = build_history(&writes);
        let validator = SerializabilityValidator::new(&h);
        let k = (writes.len() as f64 * point_frac) as usize;
        let mut reads = Vec::new();
        let mut used = std::collections::HashSet::new();
        for &raw in &subset {
            let item = ItemId::new(raw);
            if !used.insert(item) {
                continue;
            }
            let v = chains[&item]
                .iter()
                .rev()
                .find(|v| match v.writer() {
                    None => true,
                    Some(w) => (w.cycle().number() as usize) < k,
                })
                .copied()
                .expect("initial always qualifies");
            reads.push(ReadRecord::new(item, v));
        }
        prop_assert!(validator.check(&reads).is_ok());
        // the graph check is weaker, so it must pass too (empty graph:
        // with no conflict edges, only direct writer==overwriter pairs
        // could fail, which a snapshot never contains)
        let graph = bpush_sgraph::SerializationGraph::new();
        prop_assert!(validator.check_serializable(&graph, &reads).is_ok());
    }

    /// The graph check is never *stricter* than the interval check: any
    /// prefix-consistent readset passes it, whatever edges the graph has
    /// (completeness of the weaker criterion).
    #[test]
    fn graph_check_is_weaker(
        writes in proptest::collection::vec((0u32..N_ITEMS, 0u32..1), 1..24),
        point_frac in 0.0f64..1.0,
    ) {
        let (h, chains) = build_history(&writes);
        let validator = SerializabilityValidator::new(&h);
        let k = (writes.len() as f64 * point_frac) as usize;
        let reads: Vec<ReadRecord> = (0..N_ITEMS)
            .map(|i| {
                let item = ItemId::new(i);
                let v = chains[&item]
                    .iter()
                    .rev()
                    .find(|v| match v.writer() {
                        None => true,
                        Some(w) => (w.cycle().number() as usize) < k,
                    })
                    .copied()
                    .expect("initial always qualifies");
                ReadRecord::new(item, v)
            })
            .collect();
        // build the *full* serial-order conflict graph: an edge between
        // consecutive writers of the same item
        let mut graph = bpush_sgraph::SerializationGraph::new();
        for chain in chains.values() {
            for w in chain.windows(2) {
                if let (Some(a), Some(b)) = (w[0].writer(), w[1].writer()) {
                    graph.add_edge(bpush_sgraph::Node::Txn(a), bpush_sgraph::Node::Txn(b));
                }
            }
        }
        prop_assert!(validator.check(&reads).is_ok());
        prop_assert!(validator.check_serializable(&graph, &reads).is_ok());
    }
}
