//! Embedding the client library in an application (no simulator).
//!
//! Everything else in `examples/` drives full simulations; this example
//! shows the API an application embeds: `BroadcastSession` wraps a
//! protocol and a cache, while *your* code owns the radio loop — you
//! decide when to tune, the session decides what is consistent.
//!
//! Run with: `cargo run --example embedded_client`

use bpush_client::session::{BroadcastSession, ReadStep};
use bpush_client::{CacheParams, ClientCache};
use bpush_core::{CacheMode, Method};
use bpush_server::{BroadcastServer, ServerOptions};
use bpush_types::{ItemId, ServerConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The "airwaves": in a real deployment this is your receiver; here a
    // server produces the cycles.
    let mut server = BroadcastServer::new(
        ServerConfig {
            broadcast_size: 100,
            update_range: 50,
            server_read_range: 100,
            updates_per_cycle: 8,
            txns_per_cycle: 4,
            ..ServerConfig::default()
        },
        ServerOptions::plain(),
        2026,
    )?;

    // The embedded client: invalidation-only + a small coherent cache.
    let cache = ClientCache::new(CacheParams {
        mode: CacheMode::Plain,
        current_capacity: 16,
        old_capacity: 0,
        items_per_bucket: 1,
    });
    let mut session =
        BroadcastSession::new(Method::InvalidationCache.build_protocol(), Some(cache));

    let wanted = [ItemId::new(3), ItemId::new(17), ItemId::new(42)];
    let mut committed = 0;
    let mut aborted = 0;

    for _ in 0..12 {
        let bcast = server.run_cycle();
        session.on_bcast(&bcast);

        let txn = session.begin();
        let mut failed = false;
        for &item in &wanted {
            match session.read(txn, item, &bcast) {
                Ok(ReadStep::Done) => { /* served from cache, no tuning */ }
                Ok(ReadStep::Tune { slot }) => {
                    // a real client dozes until `slot`, then hears the bucket
                    let _wake_at = slot;
                    session.deliver(txn, item, &bcast)?;
                }
                Ok(ReadStep::NextCycle) => {
                    // simplistic app: give up rather than span cycles
                    session.abort(txn);
                    failed = true;
                    break;
                }
                Err(reason) => {
                    println!("transaction aborted: {reason}");
                    failed = true;
                    break;
                }
            }
        }
        if failed {
            aborted += 1;
        } else {
            let readset = session.commit(txn)?;
            println!(
                "committed a consistent snapshot of {} items at {}",
                readset.len(),
                bcast.cycle()
            );
            committed += 1;
        }
    }
    println!("\n{committed} committed, {aborted} aborted");
    Ok(())
}
