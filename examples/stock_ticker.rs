//! Stock-ticker dissemination: why consistency needs more than caching.
//!
//! The paper's motivating applications include stock-quote feeds (§1).
//! Here a server broadcasts 500 instruments; a brokerage's pricing engine
//! repeatedly values a *portfolio* — a multi-quote read-only transaction
//! whose quotes must come from one consistent market state, or the
//! computed value mixes pre- and post-trade prices.
//!
//! The example contrasts three ways of running the same portfolio
//! workload: plain invalidation-only (aborts whenever a held quote
//! ticks), invalidation-only with a versioned cache (pins the portfolio
//! at the first tick), and SGT (commits unless an actual serialization
//! cycle forms), printing the acceptance rate and currency trade-offs.
//!
//! Run with: `cargo run --release --example stock_ticker`

use bpush_core::Method;
use bpush_sim::Simulation;
use bpush_types::{CacheConfig, ClientConfig, ServerConfig, SimConfig};

fn market_config() -> SimConfig {
    SimConfig {
        server: ServerConfig {
            broadcast_size: 500,
            // the actively traded half of the market ticks
            update_range: 250,
            server_read_range: 500,
            // a busy tape: 40 trades per broadcast cycle
            updates_per_cycle: 40,
            txns_per_cycle: 10,
            // portfolios concentrate on the same hot names that trade
            offset: 0,
            ..ServerConfig::default()
        },
        client: ClientConfig {
            read_range: 250,
            // a 12-position portfolio per valuation
            reads_per_query: 12,
            think_time: 1,
            cache: CacheConfig {
                capacity: 80,
                ..CacheConfig::default()
            },
            ..ClientConfig::default()
        },
        n_clients: 4,
        queries_per_client: 40,
        warmup_cycles: 5,
        max_cycles: 100_000,
        seed: 2_2008,
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("portfolio valuation over a broadcast stock ticker");
    println!("(500 instruments, 40 trades/cycle, 12-position portfolios)\n");
    println!(
        "{:<22} {:>10} {:>12} {:>16}",
        "method", "accepted", "latency", "currency"
    );
    for method in [
        Method::InvalidationOnly,
        Method::InvalidationCache,
        Method::InvalidationVersionedCache,
        Method::SgtCache,
    ] {
        let metrics = Simulation::new(market_config(), method)?.run()?;
        assert_eq!(metrics.violations, 0, "consistency must never be violated");
        let currency = match method {
            Method::InvalidationOnly | Method::InvalidationCache => "tick-fresh",
            Method::InvalidationVersionedCache => "as of first tick",
            _ => "serializable mix",
        };
        println!(
            "{:<22} {:>9.1}% {:>9.2} cyc {:>16}",
            method.name(),
            100.0 - metrics.abort_pct(),
            metrics.latency_cycles.mean(),
            currency,
        );
    }
    println!(
        "\nEvery committed valuation read one consistent market state \
         (verified against the server's trade history)."
    );
    Ok(())
}
