//! Quickstart: one broadcast server, one client, one protocol.
//!
//! Builds the smallest useful setup — a server cyclically broadcasting a
//! 100-item database while committing update transactions, and a client
//! running read-only queries under the invalidation-only method (§3.1) —
//! then prints what happened and proves every committed readset was
//! consistent.
//!
//! Run with: `cargo run --example quickstart`

use bpush_client::QueryExecutor;
use bpush_core::validator::SerializabilityValidator;
use bpush_core::Method;
use bpush_server::{BroadcastServer, ServerOptions};
use bpush_types::{ClientConfig, ClientId, ServerConfig, Slot};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A server broadcasting 100 items, updating 10 of them per cycle.
    let server_config = ServerConfig {
        broadcast_size: 100,
        update_range: 50,
        server_read_range: 100,
        updates_per_cycle: 10,
        txns_per_cycle: 5,
        offset: 10,
        ..ServerConfig::default()
    };
    let mut server = BroadcastServer::new(server_config, ServerOptions::plain(), 42)?;

    // 2. A client issuing 20 read-only queries of 5 reads each, validated
    //    by the invalidation-only method.
    let client_config = ClientConfig {
        read_range: 100,
        reads_per_query: 5,
        think_time: 2,
        ..ClientConfig::default()
    };
    let mut client = QueryExecutor::new(
        ClientId::new(0),
        client_config,
        Method::InvalidationOnly.build_protocol(),
        None, // no cache in the quickstart
        20,
        7,
    )?;

    // 3. Drive broadcast cycles until the client is done.
    let mut outcomes = Vec::new();
    let mut start = Slot::ZERO;
    while !client.is_done() {
        let bcast = server.run_cycle();
        outcomes.extend(client.run_cycle(&bcast, start, true)?);
        start = start.plus(bcast.total_slots());
    }

    // 4. Report.
    let committed = outcomes.iter().filter(|o| o.committed()).count();
    println!("queries run      : {}", outcomes.len());
    println!("committed        : {committed}");
    println!("aborted          : {}", outcomes.len() - committed);
    let mean_latency: f64 = {
        let c: Vec<_> = outcomes.iter().filter(|o| o.committed()).collect();
        c.iter().map(|o| o.latency_slots() as f64).sum::<f64>() / c.len().max(1) as f64
    };
    println!("mean latency     : {mean_latency:.1} slots");

    // 5. Independently verify every committed readset against the
    //    server's ground-truth history — the paper's correctness
    //    criterion, executable.
    let validator = SerializabilityValidator::new(server.history());
    for o in outcomes.iter().filter(|o| o.committed()) {
        let interval = validator.check(&o.reads)?;
        // each committed query read a prefix-consistent snapshot
        let _ = interval;
    }
    println!("all committed readsets verified consistent");
    Ok(())
}
