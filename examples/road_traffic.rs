//! Road-traffic information service with long route queries.
//!
//! §1 lists road-traffic management among the motivating dissemination
//! applications. A regional server broadcasts per-segment travel times;
//! an in-car navigator plans a route by reading *many* segments — a long
//! read-only transaction whose span covers several broadcast cycles. With
//! current-state methods such long queries keep getting invalidated by
//! incident updates; the multiversion broadcast method (§3.2) instead
//! serializes each route query at its first read and always commits,
//! trading currency for guaranteed progress.
//!
//! The example sweeps the route length and shows the crossover: short
//! queries are fine under invalidation-only, long ones need versions.
//!
//! Run with: `cargo run --release --example road_traffic`

use bpush_core::Method;
use bpush_sim::Simulation;
use bpush_types::{CacheConfig, ClientConfig, ServerConfig, SimConfig};

fn traffic_config(route_segments: u32) -> SimConfig {
    SimConfig {
        server: ServerConfig {
            // 600 road segments in the coverage area
            broadcast_size: 600,
            // incidents hit arterials: a 300-segment hot zone
            update_range: 300,
            server_read_range: 600,
            // 25 incident/flow updates per cycle
            updates_per_cycle: 25,
            txns_per_cycle: 5,
            offset: 0,
            // keep versions long enough for cross-town routes
            versions_retained: 2 * route_segments + 8,
            ..ServerConfig::default()
        },
        client: ClientConfig {
            read_range: 300,
            reads_per_query: route_segments,
            think_time: 1,
            cache: CacheConfig::disabled(),
            ..ClientConfig::default()
        },
        n_clients: 3,
        queries_per_client: 25,
        warmup_cycles: 5,
        max_cycles: 200_000,
        seed: 1_6093,
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("route planning over broadcast travel times");
    println!("(600 segments, 25 updates/cycle; route length swept)\n");
    println!(
        "{:>6} {:>18} {:>18} {:>14}",
        "route", "inv-only accept", "multiversion", "mv latency"
    );
    for route in [4u32, 8, 16, 32] {
        let inv = Simulation::new(traffic_config(route), Method::InvalidationOnly)?.run()?;
        let mv = Simulation::new(traffic_config(route), Method::MultiversionBroadcast)?.run()?;
        assert_eq!(inv.violations + mv.violations, 0);
        println!(
            "{:>6} {:>17.1}% {:>17.1}% {:>11.2} cyc",
            route,
            100.0 - inv.abort_pct(),
            100.0 - mv.abort_pct(),
            mv.latency_cycles.mean(),
        );
    }
    println!(
        "\nMultiversion broadcast commits every route query regardless of \
         length,\nreading the segment map as of the query's first read \
         (Theorem 2)."
    );
    Ok(())
}
