//! A mobile news reader that keeps disconnecting.
//!
//! Wireless clients sleep their receivers to save battery and lose the
//! channel in tunnels (§5.2.2). This example injects heavy per-cycle
//! disconnection and compares how the methods cope:
//!
//! * invalidation-only must hear *every* report, so gaps kill its
//!   queries — unless the server broadcasts windowed reports,
//! * SGT likewise, unless items carry version numbers (the §5.2.2
//!   enhancement),
//! * multiversion broadcast and multiversion caching ride out gaps as
//!   long as the versions they need survive on air or in cache.
//!
//! Run with: `cargo run --release --example mobile_newsreader`

use bpush_core::Method;
use bpush_sim::Simulation;
use bpush_types::{CacheConfig, ClientConfig, ServerConfig, SimConfig};

fn reader_config(disconnect_prob: f64, report_window: u32) -> SimConfig {
    SimConfig {
        server: ServerConfig {
            broadcast_size: 400,
            update_range: 200,
            server_read_range: 400,
            updates_per_cycle: 15,
            txns_per_cycle: 5,
            offset: 50,
            versions_retained: 24,
            report_window,
            ..ServerConfig::default()
        },
        client: ClientConfig {
            read_range: 200,
            reads_per_query: 6,
            think_time: 2,
            cache: CacheConfig {
                capacity: 60,
                old_version_fraction: 0.25,
            },
            disconnect_prob,
            ..ClientConfig::default()
        },
        n_clients: 4,
        queries_per_client: 30,
        warmup_cycles: 5,
        max_cycles: 200_000,
        seed: 0xCAFE,
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let p = 0.25;
    println!(
        "mobile news reader, {:.0}% chance of missing each cycle\n",
        p * 100.0
    );
    println!("{:<22} {:>10} {:>14}", "method", "accepted", "note");
    let cases: [(Method, u32, &str); 6] = [
        (Method::InvalidationOnly, 1, "needs every report"),
        (Method::InvalidationOnly, 4, "w=4 windowed reports"),
        (Method::Sgt, 1, "needs every report"),
        (Method::SgtVersionedItems, 1, "reads pre-gap versions"),
        (Method::MultiversionBroadcast, 1, "versions stay on air"),
        (Method::MultiversionCaching, 1, "versions stay in cache"),
    ];
    for (method, window, note) in cases {
        let metrics = Simulation::new(reader_config(p, window), method)?.run()?;
        assert_eq!(metrics.violations, 0, "gaps must never break consistency");
        let label = if window > 1 {
            format!("{} (w={window})", method.name())
        } else {
            method.name().to_owned()
        };
        println!(
            "{:<22} {:>9.1}% {:>22}",
            label,
            100.0 - metrics.abort_pct(),
            note
        );
    }
    println!(
        "\nTolerant methods keep committing through gaps, and every commit \
         is still a\nconsistent snapshot — checked against the server's \
         ground-truth history."
    );
    Ok(())
}
