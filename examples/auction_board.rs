//! Electronic-tendering board: SGT keeps bid snapshots serializable.
//!
//! §1 lists auctions and electronic tendering among the motivating
//! applications. A tender board broadcasts the current best bid per lot;
//! an analyst's dashboard periodically pulls a *consistent* cross-lot
//! snapshot (a read-only transaction over several lots) to rank bidders.
//! Bids arrive continuously, so invalidation-only keeps aborting the
//! dashboard during busy phases; SGT commits whenever the bids the
//! dashboard read are mutually serializable, and the serialization-graph
//! size stays bounded by the Lemma-1 pruning rule — which this example
//! also surfaces.
//!
//! Run with: `cargo run --release --example auction_board`

use bpush_core::{Method, Sgt, SgtConfig};
use bpush_sim::Simulation;
use bpush_types::{CacheConfig, ClientConfig, ServerConfig, SimConfig};

fn board_config(bids_per_cycle: u32) -> SimConfig {
    SimConfig {
        server: ServerConfig {
            // 300 lots on the board
            broadcast_size: 300,
            update_range: 150,
            server_read_range: 300,
            updates_per_cycle: bids_per_cycle,
            txns_per_cycle: 10,
            // bidders chase the same popular lots analysts watch
            offset: 0,
            ..ServerConfig::default()
        },
        client: ClientConfig {
            read_range: 150,
            // a 10-lot ranking snapshot
            reads_per_query: 10,
            think_time: 1,
            cache: CacheConfig {
                capacity: 60,
                ..CacheConfig::default()
            },
            ..ClientConfig::default()
        },
        n_clients: 3,
        queries_per_client: 30,
        warmup_cycles: 5,
        max_cycles: 100_000,
        seed: 0xB1D,
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("cross-lot bid snapshots over a tender broadcast\n");
    println!(
        "{:>12} {:>16} {:>14} {:>16}",
        "bids/cycle", "inv-only accept", "sgt accept", "sgt+cache accept"
    );
    for bids in [10u32, 25, 50] {
        let inv = Simulation::new(board_config(bids), Method::InvalidationOnly)?.run()?;
        let sgt = Simulation::new(board_config(bids), Method::Sgt)?.run()?;
        let sgtc = Simulation::new(board_config(bids), Method::SgtCache)?.run()?;
        assert_eq!(inv.violations + sgt.violations + sgtc.violations, 0);
        println!(
            "{:>12} {:>15.1}% {:>13.1}% {:>15.1}%",
            bids,
            100.0 - inv.abort_pct(),
            100.0 - sgt.abort_pct(),
            100.0 - sgtc.abort_pct(),
        );
    }

    // Show the client-side price of SGT: the pruned local graph stays
    // tiny even while the server commits continuously (Lemma 1).
    let mut sgt = Sgt::new(SgtConfig::default());
    use bpush_core::ReadOnlyProtocol;
    sgt.begin_query(bpush_types::QueryId::new(0), bpush_types::Cycle::ZERO);
    let (nodes, edges) = sgt.graph_size();
    println!(
        "\nlocal serialization graph before any invalidation: {nodes} nodes, {edges} edges \
         (the paper's \"no overhead until an item is overwritten\")."
    );
    Ok(())
}
